//! Recursive-descent parser for `.tirl` sources.
//!
//! The grammar mirrors [`crate::printer::print`]'s canonical output and
//! the paper's listings. See the crate documentation for an overview.

pub mod lexer;

use crate::diag::SrcLoc;
use crate::error::{IrError, Result};
use crate::function::{Call, IrFunction, OffsetDecl, ParKind, Param, PortDir, Stmt};
use crate::instr::{Dest, Instruction, Opcode, Operand};
use crate::module::{IrModule, MemForm};
use crate::stream::{AccessPattern, AddrSpace, MemObject, PortDecl, StreamDir, StreamObject};
use crate::types::ScalarType;
use crate::validate;
use lexer::{lex, Token, TokenKind};

/// Parse and validate a `.tirl` source into an [`IrModule`].
pub fn parse(src: &str) -> Result<IrModule> {
    let m = parse_unvalidated(src)?;
    validate::validate(&m)?;
    Ok(m)
}

/// Parse without running semantic validation (used by tests that need
/// deliberately invalid modules).
pub fn parse_unvalidated(src: &str) -> Result<IrModule> {
    let _sp = tytra_trace::span("ir.parse").with("bytes", src.len());
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.module()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn here(&self) -> (u32, u32) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1))
    }

    fn err(&self, msg: impl Into<String>) -> IrError {
        let (line, col) = self.here();
        IrError::Parse { line, col, msg: msg.into() }
    }

    /// Source location of the *next* token, recorded onto the entity a
    /// declaration parse is about to produce.
    fn loc_here(&self) -> SrcLoc {
        let (line, col) = self.here();
        SrcLoc::at(line, col)
    }

    fn next(&mut self) -> Result<TokenKind> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t.kind)
    }

    fn expect(&mut self, want: &TokenKind) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected {}, found {}", want.describe(), got.describe())))
        }
    }

    fn eat(&mut self, want: &TokenKind) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            TokenKind::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected identifier, found {}", other.describe())))
            }
        }
    }

    fn percent(&mut self) -> Result<String> {
        match self.next()? {
            TokenKind::Percent(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected %name, found {}", other.describe())))
            }
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.next()? {
            TokenKind::Int(v) => Ok(v),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected integer, found {}", other.describe())))
            }
        }
    }

    fn bang_int(&mut self) -> Result<i64> {
        self.expect(&TokenKind::Bang)?;
        self.int()
    }

    fn bang_str(&mut self) -> Result<String> {
        self.expect(&TokenKind::Bang)?;
        match self.next()? {
            TokenKind::Str(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected string, found {}", other.describe())))
            }
        }
    }

    fn scalar_type(&mut self) -> Result<ScalarType> {
        let tok = self.ident()?;
        ScalarType::parse_token(&tok).ok_or_else(|| {
            self.pos -= 1;
            self.err(format!("`{tok}` is not a scalar type (ui<W>/si<W>/f32/f64)"))
        })
    }

    fn addr_space(&mut self) -> Result<AddrSpace> {
        let kw = self.ident()?;
        if kw != "addrSpace" {
            self.pos -= 1;
            return Err(self.err(format!("expected `addrSpace`, found `{kw}`")));
        }
        self.expect(&TokenKind::LParen)?;
        let n = self.int()?;
        self.expect(&TokenKind::RParen)?;
        if !(0..=255).contains(&n) {
            return Err(self.err(format!("address space {n} out of range")));
        }
        Ok(AddrSpace::from_number(n as u8))
    }

    fn module(mut self) -> Result<IrModule> {
        let mut m = IrModule::new("anonymous");
        while let Some(tok) = self.peek() {
            match tok {
                TokenKind::Bang => self.directive(&mut m)?,
                TokenKind::Percent(_) => self.manage_decl(&mut m)?,
                TokenKind::At(_) => self.port_decl(&mut m)?,
                TokenKind::Ident(kw) if kw == "define" => {
                    let f = self.function()?;
                    m.functions.push(f);
                }
                other => {
                    return Err(
                        self.err(format!("expected a declaration, found {}", other.describe()))
                    )
                }
            }
        }
        Ok(m)
    }

    /// `!module = !"name"`, `!ndrange = !{a, b}`, `!nki = !N`,
    /// `!form = !"B"`, `!freq = !F`.
    fn directive(&mut self, m: &mut IrModule) -> Result<()> {
        self.expect(&TokenKind::Bang)?;
        let key = self.ident()?;
        self.expect(&TokenKind::Eq)?;
        match key.as_str() {
            "module" => m.name = self.bang_str()?,
            "ndrange" => {
                self.expect(&TokenKind::Bang)?;
                self.expect(&TokenKind::LBrace)?;
                let mut dims = Vec::new();
                loop {
                    let v = self.int()?;
                    if v < 0 {
                        return Err(self.err("NDRange dimensions must be non-negative"));
                    }
                    dims.push(v as u64);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                m.meta.ndrange = dims;
            }
            "nki" => {
                let v = self.bang_int()?;
                if v < 0 {
                    return Err(self.err("NKI must be non-negative"));
                }
                m.meta.nki = v as u64;
            }
            "form" => {
                let tag = self.bang_str()?;
                m.meta.form = MemForm::from_tag(&tag)
                    .ok_or_else(|| self.err(format!("unknown memory-execution form `{tag}`")))?;
            }
            "vect" => {
                let v = self.bang_int()?;
                if !(1..=4096).contains(&v) {
                    return Err(self.err("vectorization degree must be in 1..=4096"));
                }
                m.meta.vect = v as u32;
            }
            "freq" => {
                self.expect(&TokenKind::Bang)?;
                let v = match self.next()? {
                    TokenKind::Float(f) => f,
                    TokenKind::Int(i) => i as f64,
                    other => {
                        self.pos -= 1;
                        return Err(
                            self.err(format!("expected number, found {}", other.describe()))
                        );
                    }
                };
                m.meta.freq_mhz = Some(v);
            }
            other => return Err(self.err(format!("unknown directive `!{other}`"))),
        }
        Ok(())
    }

    /// `%m = memobj addrSpace(1) ui18, !size, !N`
    /// `%s = streamobj %m, !read, !"CONT"[, !stride]`
    fn manage_decl(&mut self, m: &mut IrModule) -> Result<()> {
        let loc = self.loc_here();
        let name = self.percent()?;
        self.expect(&TokenKind::Eq)?;
        let kw = self.ident()?;
        match kw.as_str() {
            "memobj" => {
                let space = self.addr_space()?;
                let ty = self.scalar_type()?;
                self.expect(&TokenKind::Comma)?;
                self.expect(&TokenKind::Bang)?;
                let szkw = self.ident()?;
                if szkw != "size" {
                    return Err(self.err(format!("expected `size`, found `{szkw}`")));
                }
                self.expect(&TokenKind::Comma)?;
                let len = self.bang_int()?;
                if len < 0 {
                    return Err(self.err("memobj size must be non-negative"));
                }
                m.mems.push(MemObject { name, space, elem_ty: ty, len: len as u64, span: loc });
            }
            "streamobj" => {
                let mem = self.percent()?;
                self.expect(&TokenKind::Comma)?;
                self.expect(&TokenKind::Bang)?;
                let dir = match self.ident()?.as_str() {
                    "read" => StreamDir::Read,
                    "write" => StreamDir::Write,
                    other => {
                        return Err(self.err(format!("expected `read` or `write`, found `{other}`")))
                    }
                };
                self.expect(&TokenKind::Comma)?;
                let pattern = self.pattern()?;
                m.streams.push(StreamObject { name, mem, dir, pattern, span: loc });
            }
            other => {
                return Err(self.err(format!("expected `memobj` or `streamobj`, found `{other}`")))
            }
        }
        Ok(())
    }

    /// `!"CONT"` or `!"STRIDED", !<stride>`.
    fn pattern(&mut self) -> Result<AccessPattern> {
        let tag = self.bang_str()?;
        match tag.as_str() {
            "CONT" => Ok(AccessPattern::Contiguous),
            "STRIDED" => {
                self.expect(&TokenKind::Comma)?;
                let stride = self.bang_int()?;
                if stride <= 0 {
                    return Err(self.err("stride must be positive"));
                }
                Ok(AccessPattern::Strided { stride: stride as u64 })
            }
            other => Err(self.err(format!("unknown access pattern `{other}`"))),
        }
    }

    /// `@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"`
    ///
    /// For strided ports the stride is recovered from the named stream
    /// object (which must have been declared earlier).
    fn port_decl(&mut self, m: &mut IrModule) -> Result<()> {
        let loc = self.loc_here();
        let name = match self.next()? {
            TokenKind::At(n) => n,
            other => {
                self.pos -= 1;
                return Err(self.err(format!("expected @name, found {}", other.describe())));
            }
        };
        self.expect(&TokenKind::Eq)?;
        let space = self.addr_space()?;
        let ty = self.scalar_type()?;
        self.expect(&TokenKind::Comma)?;
        let dir = match self.bang_str()?.as_str() {
            "istream" => StreamDir::Read,
            "ostream" => StreamDir::Write,
            other => return Err(self.err(format!("expected `istream`/`ostream`, found `{other}`"))),
        };
        self.expect(&TokenKind::Comma)?;
        let pattern_tag = self.bang_str()?;
        self.expect(&TokenKind::Comma)?;
        let base_offset = self.bang_int()?;
        self.expect(&TokenKind::Comma)?;
        let stream = self.bang_str()?;
        let pattern = match pattern_tag.as_str() {
            "CONT" => AccessPattern::Contiguous,
            "STRIDED" => m
                .stream(&stream)
                .map(|s| s.pattern)
                .filter(|p| matches!(p, AccessPattern::Strided { .. }))
                .ok_or_else(|| {
                    self.err(format!(
                        "strided port `{name}` needs an earlier strided streamobj `{stream}`"
                    ))
                })?,
            other => return Err(self.err(format!("unknown access pattern `{other}`"))),
        };
        m.ports.push(PortDecl { name, space, ty, dir, pattern, base_offset, stream, span: loc });
        Ok(())
    }

    /// `define void @name(params) [kind] { stmts }`
    fn function(&mut self) -> Result<IrFunction> {
        let loc = self.loc_here();
        let kw = self.ident()?;
        debug_assert_eq!(kw, "define");
        let ret = self.ident()?;
        if ret != "void" {
            return Err(self.err(format!("functions return `void`, found `{ret}`")));
        }
        let name = match self.next()? {
            TokenKind::At(n) => n,
            other => {
                self.pos -= 1;
                return Err(self.err(format!("expected @name, found {}", other.describe())));
            }
        };
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                let dir = if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == "out") {
                    self.pos += 1;
                    PortDir::Out
                } else {
                    PortDir::In
                };
                let ty = self.scalar_type()?;
                let pname = self.percent()?;
                params.push(Param { name: pname, ty, dir });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let kind = if matches!(self.peek(), Some(TokenKind::Ident(s)) if ParKind::from_keyword(s).is_some())
        {
            let kw = self.ident()?;
            ParKind::from_keyword(&kw)
                .ok_or_else(|| self.err(format!("unknown parallelism keyword `{kw}`")))?
        } else if name == "main" {
            ParKind::Seq
        } else {
            return Err(self.err(format!(
                "function `@{name}` needs a parallelism keyword (pipe/par/seq/comb)"
            )));
        };
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != Some(&TokenKind::RBrace) {
            body.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(IrFunction { name, kind, params, body, span: loc })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek() {
            Some(TokenKind::Ident(kw)) if kw == "call" => self.call_stmt(),
            Some(TokenKind::Ident(_)) => self.assign_stmt(),
            Some(other) => {
                Err(self.err(format!("expected a statement, found {}", other.describe())))
            }
            None => Err(self.err("unexpected end of input inside function body")),
        }
    }

    /// `call @f(args) kind`
    fn call_stmt(&mut self) -> Result<Stmt> {
        let loc = self.loc_here();
        let kw = self.ident()?;
        debug_assert_eq!(kw, "call");
        let callee = match self.next()? {
            TokenKind::At(n) => n,
            other => {
                self.pos -= 1;
                return Err(self.err(format!("expected @name, found {}", other.describe())));
            }
        };
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                args.push(self.operand()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let kindkw = self.ident()?;
        let kind = ParKind::from_keyword(&kindkw)
            .ok_or_else(|| self.err(format!("`{kindkw}` is not a parallelism keyword")))?;
        Ok(Stmt::Call(Call { callee, args, kind, span: loc }))
    }

    /// Either an offset declaration or an instruction:
    ///
    /// ```text
    /// ui18 %d = ui18 %src, !offset, !+1
    /// ui18 %d = add ui18 %a, %b
    /// ui18 @acc = add ui18 %x, @acc
    /// ```
    fn assign_stmt(&mut self) -> Result<Stmt> {
        let loc = self.loc_here();
        let ty = self.scalar_type()?;
        let dest = match self.next()? {
            TokenKind::Percent(n) => Dest::Local(n),
            TokenKind::At(n) => Dest::Global(n),
            other => {
                self.pos -= 1;
                return Err(self.err(format!(
                    "expected destination %name or @name, found {}",
                    other.describe()
                )));
            }
        };
        self.expect(&TokenKind::Eq)?;
        // Offset declarations repeat the type right after `=`; instructions
        // start with a mnemonic.
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if ScalarType::parse_token(s).is_some())
        {
            let ty2 = self.scalar_type()?;
            if ty2 != ty {
                return Err(self.err(format!("offset type mismatch: {ty} vs {ty2}")));
            }
            let src = self.percent()?;
            self.expect(&TokenKind::Comma)?;
            self.expect(&TokenKind::Bang)?;
            let kw = self.ident()?;
            if kw != "offset" {
                return Err(self.err(format!("expected `offset`, found `{kw}`")));
            }
            self.expect(&TokenKind::Comma)?;
            let off = self.bang_int()?;
            let dest = match dest {
                Dest::Local(n) => n,
                Dest::Global(_) => return Err(self.err("offset streams cannot target globals")),
            };
            return Ok(Stmt::Offset(OffsetDecl { dest, ty, src, offset: off, span: loc }));
        }
        let mnemonic = self.ident()?;
        let op = Opcode::from_mnemonic(&mnemonic)
            .ok_or_else(|| self.err(format!("unknown opcode `{mnemonic}`")))?;
        let ty2 = self.scalar_type()?;
        if ty2 != ty {
            return Err(self.err(format!("instruction type mismatch: {ty} vs {ty2}")));
        }
        let mut operands = Vec::new();
        loop {
            operands.push(self.operand()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if operands.len() != op.arity() {
            return Err(self.err(format!(
                "`{mnemonic}` expects {} operands, got {}",
                op.arity(),
                operands.len()
            )));
        }
        Ok(Stmt::Instr(Instruction { dest, op, ty, operands, span: loc }))
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.next()? {
            TokenKind::Percent(n) => Ok(Operand::Local(n)),
            TokenKind::At(n) => Ok(Operand::Global(n)),
            TokenKind::Int(v) => Ok(Operand::Imm(v)),
            TokenKind::Float(v) => Ok(Operand::ImmF(v)),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected an operand, found {}", other.describe())))
            }
        }
    }

    // Suppress dead-code warning: peek2 is kept for future lookahead needs
    // of extended grammars and used in tests.
    #[allow(dead_code)]
    fn lookahead2(&self) -> Option<&TokenKind> {
        self.peek2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print;

    /// A faithful transcription of the paper's Fig 12 (abbreviated SOR,
    /// single pipeline lane), completed with Manage-IR and metadata.
    pub const SOR_C2_TIRL: &str = r#"
; **** abbreviated SOR kernel, single pipeline lane (paper Fig 12) ****
!module = !"sor_c2"
!ndrange = !{30, 30, 30}
!nki = !1000
!form = !"B"

; **** MANAGE-IR ****
%mem_p = memobj addrSpace(1) ui18, !size, !27000
%mem_pnew = memobj addrSpace(1) ui18, !size, !27000
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_pnew = streamobj %mem_pnew, !write, !"CONT"

; **** COMPUTE-IR ****
@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
@main.pnew = addrSpace(12) ui18, !"ostream", !"CONT", !0, !"strobj_pnew"

define void @f0(ui18 %p, out ui18 %pnew) pipe {
  ;stream offsets
  ui18 %pip1 = ui18 %p, !offset, !+1
  ui18 %pin1 = ui18 %p, !offset, !-1
  ui18 %pkp1 = ui18 %p, !offset, !+900
  ui18 %pkn1 = ui18 %p, !offset, !-900
  ;datapath instructions
  ui18 %1 = add ui18 %pip1, %pin1
  ui18 %2 = add ui18 %pkp1, %pkn1
  ui18 %3 = add ui18 %1, %2
  ui18 %4 = mul ui18 %3, 2
  ;reduction operation on global variable
  ui18 @sorErrAcc = add ui18 %4, @sorErrAcc
  ui18 %pnew__out = or ui18 %4, 0
}

define void @main() {
  call @f0(%p, %pnew) pipe
}
"#;

    #[test]
    fn parses_fig12_style_source() {
        let m = parse(SOR_C2_TIRL).expect("valid");
        assert_eq!(m.name, "sor_c2");
        assert_eq!(m.meta.ndrange, vec![30, 30, 30]);
        assert_eq!(m.meta.nki, 1000);
        assert_eq!(m.meta.form, MemForm::B);
        assert_eq!(m.mems.len(), 2);
        assert_eq!(m.streams.len(), 2);
        assert_eq!(m.ports.len(), 2);
        let f0 = m.function("f0").unwrap();
        assert_eq!(f0.kind, ParKind::Pipe);
        assert_eq!(f0.offsets().count(), 4);
        assert_eq!(f0.n_instructions(), 6);
        assert_eq!(f0.max_abs_offset(), 900);
        assert!(f0.instrs().any(Instruction::is_reduction));
        let main = m.main().unwrap();
        assert_eq!(main.kind, ParKind::Seq);
        assert_eq!(main.calls().count(), 1);
    }

    #[test]
    fn round_trip_print_parse() {
        let m = parse(SOR_C2_TIRL).unwrap();
        let text = print(&m);
        let m2 = parse(&text).expect("canonical text parses");
        assert_eq!(m, m2);
    }

    #[test]
    fn strided_stream_round_trips() {
        let src = r#"
!module = !"s"
!ndrange = !{16}
!nki = !1
!form = !"A"
%mem_x = memobj addrSpace(1) ui32, !size, !256
%strobj_x = streamobj %mem_x, !read, !"STRIDED", !16
@main.x = addrSpace(12) ui32, !"istream", !"STRIDED", !0, !"strobj_x"
%mem_y = memobj addrSpace(1) ui32, !size, !256
%strobj_y = streamobj %mem_y, !write, !"CONT"
@main.y = addrSpace(12) ui32, !"ostream", !"CONT", !0, !"strobj_y"
define void @f0(ui32 %x, out ui32 %y) pipe {
  ui32 %y__out = or ui32 %x, 0
}
define void @main() {
  call @f0(%x, %y) pipe
}
"#;
        let m = parse(src).unwrap();
        assert_eq!(m.streams[0].pattern, AccessPattern::Strided { stride: 16 });
        assert_eq!(m.ports[0].pattern, AccessPattern::Strided { stride: 16 });
        let m2 = parse(&print(&m)).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn missing_kind_keyword_is_error() {
        let src = "define void @f0(ui18 %p) {\n}";
        let e = parse_unvalidated(src).unwrap_err();
        assert!(e.to_string().contains("parallelism keyword"), "{e}");
    }

    #[test]
    fn unknown_opcode_is_error() {
        let src = "define void @f0(ui18 %p) pipe {\n ui18 %x = fma ui18 %p, %p\n}";
        let e = parse_unvalidated(src).unwrap_err();
        assert!(e.to_string().contains("unknown opcode"), "{e}");
    }

    #[test]
    fn arity_mismatch_is_error() {
        let src = "define void @f0(ui18 %p) pipe {\n ui18 %x = add ui18 %p\n}";
        let e = parse_unvalidated(src).unwrap_err();
        assert!(e.to_string().contains("expects 2 operands"), "{e}");
    }

    #[test]
    fn type_mismatch_in_instruction_is_error() {
        let src = "define void @f0(ui18 %p) pipe {\n ui18 %x = add ui32 %p, %p\n}";
        let e = parse_unvalidated(src).unwrap_err();
        assert!(e.to_string().contains("type mismatch"), "{e}");
    }

    #[test]
    fn parse_reports_line_numbers() {
        let src = "!module = !\"m\"\n!nonsense = !1\n";
        match parse_unvalidated(src).unwrap_err() {
            IrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn parse_validates_semantics() {
        // Syntactically fine, semantically missing main.
        let src = "define void @f0(ui18 %p) pipe {\n ui18 %x = add ui18 %p, 1\n}";
        assert!(matches!(parse(src), Err(IrError::Validate(_))));
        assert!(parse_unvalidated(src).is_ok());
    }

    #[test]
    fn negative_memobj_size_rejected() {
        let src = "%m = memobj addrSpace(1) ui18, !size, !-4";
        assert!(parse_unvalidated(src).is_err());
    }

    #[test]
    fn strided_port_without_stream_rejected() {
        let src = r#"@main.x = addrSpace(12) ui32, !"istream", !"STRIDED", !0, !"nope""#;
        let e = parse_unvalidated(src).unwrap_err();
        assert!(e.to_string().contains("strided port"), "{e}");
    }

    #[test]
    fn float_kernel_parses() {
        let src = r#"
!module = !"fk"
!ndrange = !{8}
!nki = !1
!form = !"C"
%mem_a = memobj addrSpace(2) f32, !size, !8
%strobj_a = streamobj %mem_a, !read, !"CONT"
@main.a = addrSpace(12) f32, !"istream", !"CONT", !0, !"strobj_a"
%mem_b = memobj addrSpace(2) f32, !size, !8
%strobj_b = streamobj %mem_b, !write, !"CONT"
@main.b = addrSpace(12) f32, !"ostream", !"CONT", !0, !"strobj_b"
define void @f0(f32 %a, out f32 %b) pipe {
  f32 %t = mul f32 %a, 0.5
  f32 %b__out = or f32 %t, 0
}
define void @main() {
  call @f0(%a, %b) pipe
}
"#;
        let m = parse(src).unwrap();
        assert_eq!(m.meta.form, MemForm::C);
        let f0 = m.function("f0").unwrap();
        let first = f0.instrs().next().unwrap();
        assert_eq!(first.operands[1], Operand::ImmF(0.5));
        let m2 = parse(&print(&m)).unwrap();
        assert_eq!(m, m2);
    }
}
