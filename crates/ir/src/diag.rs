//! Source locations and structured diagnostics.
//!
//! IR entities carry an optional [`Span`] (recorded by the parser, absent
//! for programmatically built modules) wrapped in a [`SrcLoc`].
//! Validation and the lint passes report through [`Diagnostic`]s pushed
//! into a [`DiagSink`], so one run can surface *every* problem with a
//! stable code, a severity and a source position, instead of stopping at
//! the first error.

use std::fmt;

/// A 1-based source position in a `.tirl` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An optional source location attached to an IR entity.
///
/// Equality is deliberately *transparent*: two `SrcLoc`s always compare
/// equal, so a parsed module and its print/re-parse image stay
/// structurally equal even though positions shift. Spans are provenance,
/// not semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SrcLoc(pub Option<Span>);

impl SrcLoc {
    /// No recorded location (programmatically built IR).
    pub const fn none() -> SrcLoc {
        SrcLoc(None)
    }

    /// Location at the given 1-based line and column.
    pub fn at(line: u32, col: u32) -> SrcLoc {
        SrcLoc(Some(Span { line, col }))
    }

    /// The span, if one was recorded.
    pub fn get(&self) -> Option<Span> {
        self.0
    }
}

impl PartialEq for SrcLoc {
    fn eq(&self, _other: &SrcLoc) -> bool {
        true // provenance only; see type docs
    }
}

impl Eq for SrcLoc {}

impl std::hash::Hash for SrcLoc {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {
        // Nothing: must stay consistent with the transparent equality.
    }
}

impl From<Span> for SrcLoc {
    fn from(s: Span) -> SrcLoc {
        SrcLoc(Some(s))
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but not necessarily wrong; fails under `--deny-warnings`.
    Warn,
    /// Definitely wrong; the design is rejected.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered output (`error:`, `warning:`,
    /// `info:`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One reported problem: a stable code (`TLxxxx`), severity, message,
/// optional source position and optional fix hint.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `TL0003` (validation) or `TL1005`
    /// (lint). Codes are never reused or renumbered.
    pub code: &'static str,
    /// Seriousness.
    pub severity: Severity,
    /// Human-readable description of the problem.
    pub message: String,
    /// Where in the source the problem is, when known.
    pub span: Option<Span>,
    /// A suggested fix or mitigation, when one exists.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// New error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            hint: None,
        }
    }

    /// New warning diagnostic.
    pub fn warn(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warn,
            message: message.into(),
            span: None,
            hint: None,
        }
    }

    /// New informational diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Info,
            message: message.into(),
            span: None,
            hint: None,
        }
    }

    /// Attach a source location.
    pub fn with_loc(mut self, loc: SrcLoc) -> Diagnostic {
        self.span = loc.get();
        self
    }

    /// Attach an explicit span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attach a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(s) = self.span {
            write!(f, " (at {s})")?;
        }
        Ok(())
    }
}

/// Collector that validation and lint passes push [`Diagnostic`]s into.
#[derive(Debug, Default)]
pub struct DiagSink {
    diags: Vec<Diagnostic>,
}

impl DiagSink {
    /// New empty sink.
    pub fn new() -> DiagSink {
        DiagSink::default()
    }

    /// Record a diagnostic.
    pub fn emit(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consume the sink, yielding its diagnostics.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// True when nothing has been reported.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of diagnostics at exactly the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// True if any error-severity diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srcloc_equality_is_transparent() {
        assert_eq!(SrcLoc::at(3, 7), SrcLoc::none());
        assert_eq!(SrcLoc::at(1, 1), SrcLoc::at(99, 2));
        assert_eq!(SrcLoc::at(4, 5).get(), Some(Span { line: 4, col: 5 }));
        assert_eq!(SrcLoc::none().get(), None);
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.label(), "warning");
    }

    #[test]
    fn diagnostic_builders_and_display() {
        let d = Diagnostic::warn("TL1001", "stream `q` is never consumed")
            .with_span(Span { line: 12, col: 3 })
            .with_hint("remove the stream or wire it to a port");
        assert_eq!(d.code, "TL1001");
        assert_eq!(d.severity, Severity::Warn);
        assert_eq!(d.span, Some(Span { line: 12, col: 3 }));
        assert_eq!(d.to_string(), "warning[TL1001]: stream `q` is never consumed (at 12:3)");
    }

    #[test]
    fn sink_counts_by_severity() {
        let mut sink = DiagSink::new();
        assert!(sink.is_empty());
        sink.emit(Diagnostic::error("TL0001", "a"));
        sink.emit(Diagnostic::warn("TL1002", "b"));
        sink.emit(Diagnostic::warn("TL1003", "c"));
        sink.emit(Diagnostic::info("TL1006", "d"));
        assert_eq!(sink.count(Severity::Error), 1);
        assert_eq!(sink.count(Severity::Warn), 2);
        assert_eq!(sink.count(Severity::Info), 1);
        assert!(sink.has_errors());
        assert_eq!(sink.diagnostics().len(), 4);
    }
}
