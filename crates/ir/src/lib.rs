//! # TyTra-IR
//!
//! The TyTra intermediate representation: a strongly, statically typed,
//! SSA-based streaming-dataflow IR for expressing FPGA design variants, as
//! described in section IV of Nabi & Vanderbauwhede, *"A Fast and Accurate
//! Cost Model for FPGA Design Space Exploration in HPC Applications"*
//! (IPDPSW 2016).
//!
//! A TyTra-IR design has two components:
//!
//! * the **Manage-IR** — [`MemObject`]s (anything that can source or sink a
//!   stream; in software terms, an array in memory) and [`StreamObject`]s
//!   (the connection between a memory object and a streaming port of a
//!   processing element, carrying an access-pattern annotation), plus the
//!   port declarations that bind streams to kernel arguments;
//! * the **Compute-IR** — a hierarchy of [`IrFunction`]s, each tagged with a
//!   parallelism keyword ([`ParKind`]): `pipe` (pipeline parallelism), `par`
//!   (thread parallelism), `seq` (sequential execution) or `comb` (a custom
//!   single-cycle combinatorial block). Function bodies are SSA
//!   [`Instruction`]s, stream-[`OffsetDecl`]s and [`Call`]s to child
//!   functions.
//!
//! The textual syntax (`.tirl` files) follows the paper's listings (Figs 12
//! and 14); [`parse()`][parser::parse] and [`print()`][printer::print] round-trip it. The [`builder`] module
//! offers a programmatic API. [`config_tree`] extracts the architecture
//! implied by the function hierarchy (Fig 8) and classifies it against the
//! design-space abstraction of Fig 5. [`dfg`] builds the dataflow graph that
//! the cost model schedules and the simulator executes. [`fingerprint`]
//! computes the stable, span-transparent structural hashes under which the
//! session-based cost estimator memoizes per-function sub-results.

pub mod arena;
pub mod builder;
pub mod config_tree;
pub mod dfg;
pub mod diag;
pub mod error;
pub mod fingerprint;
pub mod function;
pub mod instr;
pub mod intern;
pub mod module;
pub mod parser;
pub mod printer;
pub mod stream;
pub mod types;
pub mod validate;

pub use arena::{
    ArenaModule, ConfigPlan, FnId, InstrId, MemId, PatchedModule, PlanNode, PortId, StmtId,
    StmtKind, StreamId,
};
pub use builder::{FunctionBuilder, ModuleBuilder};
pub use config_tree::{ConfigClass, ConfigNode, ConfigTree};
pub use dfg::{Dfg, DfgNode, LatencyModel, UnitLatency};
pub use diag::{DiagSink, Diagnostic, Severity, Span, SrcLoc};
pub use error::{ErrorCategory, IrError, TybecError, TybecResult};
pub use fingerprint::{
    fingerprint_function, fingerprint_module, fingerprint_streams, fingerprint_subtree,
    StableHasher,
};
pub use function::{Call, IrFunction, OffsetDecl, ParKind, Param, PortDir, Stmt};
pub use instr::{Dest, Instruction, Opcode, Operand};
pub use intern::{Symbol, SymbolTable};
pub use module::{ExecMeta, IrModule, MemForm};
pub use parser::{parse, parse_unvalidated};
pub use printer::print;
pub use stream::{AccessPattern, AddrSpace, MemObject, PortDecl, StreamDir, StreamObject};
pub use types::ScalarType;
pub use validate::{validate, validate_into};
