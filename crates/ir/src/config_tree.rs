//! Configuration-tree extraction (paper Figs 5, 7, 8).
//!
//! The TyTra compiler parses the IR description of a design variant
//! expressed with the `pipe`/`par`/`seq`/`comb` constructs and extracts the
//! architecture from it as a tree of configuration nodes. The tree is then
//! classified against the design-space abstraction of Fig 5 (C1: replicated
//! pipeline lanes, C2: single pipeline, ...) and checked against the
//! configuration patterns currently supported by the compiler (Fig 7).

use crate::error::{IrError, Result};
use crate::function::ParKind;
use crate::module::IrModule;

/// One node of the extracted configuration tree. Children correspond to
/// the function's call statements in program order.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigNode {
    /// Function realising this node.
    pub function: String,
    /// Parallelism kind of the node.
    pub kind: ParKind,
    /// Number of datapath instructions directly in this node.
    pub n_instrs: u64,
    /// Child configurations (callees), in call order.
    pub children: Vec<ConfigNode>,
}

impl ConfigNode {
    /// Total instruction count of the subtree.
    pub fn subtree_instrs(&self) -> u64 {
        self.n_instrs + self.children.iter().map(ConfigNode::subtree_instrs).sum::<u64>()
    }

    /// Depth of the subtree (a lone node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(ConfigNode::depth).max().unwrap_or(0)
    }

    /// Count nodes of a given kind in the subtree.
    pub fn count_kind(&self, kind: ParKind) -> usize {
        usize::from(self.kind == kind)
            + self.children.iter().map(|c| c.count_kind(kind)).sum::<usize>()
    }

    /// Render the subtree as an indented outline (used by `tybec` and in
    /// test goldens), one node per line: `kipe f0 [12 instrs]`.
    pub fn outline(&self) -> String {
        let mut s = String::new();
        self.outline_into(&mut s, 0);
        s
    }

    fn outline_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{:indent$}{} {} [{} instrs]",
            "",
            self.kind,
            self.function,
            self.n_instrs,
            indent = depth * 2
        );
        for c in &self.children {
            c.outline_into(out, depth + 1);
        }
    }
}

/// Classification of a design within the Fig 5 design-space abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigClass {
    /// C1: replicated pipeline lanes (thread + pipeline parallelism) — the
    /// xy-plane of Fig 5, expected to be "the preferable route for most
    /// small to medium sized kernels".
    C1ParallelPipes,
    /// C2: a single kernel pipeline (medium-grained parallelism by
    /// pipelining loop iterations).
    C2SinglePipe,
    /// Pattern 3 of Fig 7: a coarse-grained pipeline of peer pipelines.
    CoarsePipe,
    /// Pattern 4 of Fig 7: data-parallel coarse-grained pipelines.
    ParCoarsePipe,
    /// C4-style sequential (scalar instruction processor-like) execution.
    C4Sequential,
    /// A bare combinatorial block (single-cycle PE).
    Comb,
}

/// The extracted configuration of a design variant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigTree {
    /// Root node (the unique callee subtree under `main`).
    pub root: ConfigNode,
    /// Design-space classification.
    pub class: ConfigClass,
    /// Number of parallel kernel lanes implied by the tree (`KNL`).
    pub lanes: u64,
}

/// Extract and classify the configuration tree of a module.
///
/// Fails with [`IrError::UnsupportedConfig`] on nesting patterns outside
/// the supported set of Fig 7 (e.g. `par` directly inside `par`, or a
/// `seq` node below the root dispatcher).
pub fn extract(m: &IrModule) -> Result<ConfigTree> {
    let main = m.main().ok_or_else(|| IrError::Validate("module has no `main` function".into()))?;
    let mut roots: Vec<ConfigNode> = Vec::new();
    for c in main.calls() {
        roots.push(build_node(m, &c.callee, 0)?);
    }
    let root = match roots.len() {
        0 => return Err(IrError::Validate("`main` dispatches nothing".into())),
        1 => roots.pop().expect("len checked"),
        _ => {
            return Err(IrError::UnsupportedConfig(
                "`main` must dispatch exactly one top-level configuration".into(),
            ))
        }
    };
    let class = classify(&root)?;
    let lanes = m.kernel_lanes();
    Ok(ConfigTree { root, class, lanes })
}

fn build_node(m: &IrModule, fname: &str, depth: usize) -> Result<ConfigNode> {
    if depth > 16 {
        return Err(IrError::UnsupportedConfig(format!(
            "configuration nesting deeper than 16 at `{fname}`"
        )));
    }
    let f = m
        .function(fname)
        .ok_or_else(|| IrError::Unknown { kind: "function", name: fname.to_string() })?;
    let mut children = Vec::new();
    for c in f.calls() {
        let child = build_node(m, &c.callee, depth + 1)?;
        // Nesting legality (Fig 7): par may contain pipes (or coarse
        // pipes); pipe may contain pipes and combs; par-in-par and
        // anything under comb are outside the supported set.
        match (f.kind, child.kind) {
            (ParKind::Par, ParKind::Par) => {
                return Err(IrError::UnsupportedConfig(format!(
                    "`par` nested directly inside `par` at `{}`",
                    child.function
                )))
            }
            (ParKind::Par, ParKind::Seq) | (ParKind::Pipe, ParKind::Seq) => {
                return Err(IrError::UnsupportedConfig(format!(
                    "`seq` below the dispatcher at `{}`",
                    child.function
                )))
            }
            (ParKind::Pipe, ParKind::Par) => {
                return Err(IrError::UnsupportedConfig(format!(
                    "`par` inside `pipe` at `{}`",
                    child.function
                )))
            }
            (ParKind::Comb, _) => {
                return Err(IrError::UnsupportedConfig(format!(
                    "`comb` function `{}` may not call `{}`",
                    f.name, child.function
                )))
            }
            _ => {}
        }
        children.push(child);
    }
    Ok(ConfigNode {
        function: f.name.clone(),
        kind: f.kind,
        n_instrs: f.n_instructions(),
        children,
    })
}

fn classify(root: &ConfigNode) -> Result<ConfigClass> {
    Ok(match root.kind {
        ParKind::Comb => ConfigClass::Comb,
        ParKind::Seq => ConfigClass::C4Sequential,
        ParKind::Pipe => {
            if root.children.iter().any(|c| c.kind == ParKind::Pipe) {
                ConfigClass::CoarsePipe
            } else {
                ConfigClass::C2SinglePipe
            }
        }
        ParKind::Par => {
            // Lanes are the par's children; if any lane is itself a coarse
            // pipeline, the whole design is pattern 4 of Fig 7.
            let coarse = root
                .children
                .iter()
                .any(|lane| lane.children.iter().any(|g| g.kind == ParKind::Pipe));
            if coarse {
                ConfigClass::ParCoarsePipe
            } else {
                ConfigClass::C1ParallelPipes
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Call, IrFunction, Stmt};
    use crate::instr::{Dest, Instruction, Opcode, Operand};
    use crate::types::ScalarType;

    const T: ScalarType = ScalarType::UInt(18);

    fn instr(n: &str) -> Stmt {
        Stmt::Instr(Instruction::new(
            Dest::Local(n.into()),
            Opcode::Add,
            T,
            vec![Operand::Imm(1), Operand::Imm(2)],
        ))
    }

    fn call(f: &str, kind: ParKind) -> Stmt {
        Stmt::Call(Call { callee: f.into(), args: vec![], kind, span: crate::diag::SrcLoc::none() })
    }

    fn module_with(functions: Vec<IrFunction>) -> IrModule {
        let mut m = IrModule::new("t");
        m.functions = functions;
        m
    }

    fn pipe_with_instrs(name: &str, n: usize) -> IrFunction {
        let mut f = IrFunction::new(name, ParKind::Pipe);
        for i in 0..n {
            f.body.push(instr(&format!("v{i}")));
        }
        f
    }

    fn main_dispatching(f: &str, kind: ParKind) -> IrFunction {
        let mut main = IrFunction::new("main", ParKind::Seq);
        main.body.push(call(f, kind));
        main
    }

    #[test]
    fn single_pipe_is_c2() {
        let m = module_with(vec![pipe_with_instrs("f0", 3), main_dispatching("f0", ParKind::Pipe)]);
        let t = extract(&m).unwrap();
        assert_eq!(t.class, ConfigClass::C2SinglePipe);
        assert_eq!(t.lanes, 1);
        assert_eq!(t.root.subtree_instrs(), 3);
        assert_eq!(t.root.depth(), 1);
    }

    #[test]
    fn par_of_pipes_is_c1() {
        let mut f1 = IrFunction::new("f1", ParKind::Par);
        for _ in 0..4 {
            f1.body.push(call("f0", ParKind::Pipe));
        }
        let m =
            module_with(vec![pipe_with_instrs("f0", 5), f1, main_dispatching("f1", ParKind::Par)]);
        let t = extract(&m).unwrap();
        assert_eq!(t.class, ConfigClass::C1ParallelPipes);
        assert_eq!(t.lanes, 4);
        assert_eq!(t.root.children.len(), 4);
        assert_eq!(t.root.count_kind(ParKind::Pipe), 4);
    }

    #[test]
    fn coarse_pipeline_detected() {
        let mut top = IrFunction::new("pipeTop", ParKind::Pipe);
        top.body.push(call("pipeA", ParKind::Pipe));
        top.body.push(call("pipeB", ParKind::Pipe));
        let m = module_with(vec![
            pipe_with_instrs("pipeA", 2),
            pipe_with_instrs("pipeB", 3),
            top,
            main_dispatching("pipeTop", ParKind::Pipe),
        ]);
        let t = extract(&m).unwrap();
        assert_eq!(t.class, ConfigClass::CoarsePipe);
        assert_eq!(t.root.subtree_instrs(), 5);
        assert_eq!(t.root.depth(), 2);
    }

    #[test]
    fn par_of_coarse_pipes_is_pattern4() {
        let mut top = IrFunction::new("pipeTop", ParKind::Pipe);
        top.body.push(call("pipeA", ParKind::Pipe));
        top.body.push(call("pipeB", ParKind::Pipe));
        let mut lanes = IrFunction::new("lanes", ParKind::Par);
        lanes.body.push(call("pipeTop", ParKind::Pipe));
        lanes.body.push(call("pipeTop", ParKind::Pipe));
        let m = module_with(vec![
            pipe_with_instrs("pipeA", 2),
            pipe_with_instrs("pipeB", 3),
            top,
            lanes,
            main_dispatching("lanes", ParKind::Par),
        ]);
        let t = extract(&m).unwrap();
        assert_eq!(t.class, ConfigClass::ParCoarsePipe);
        assert_eq!(t.lanes, 2);
    }

    #[test]
    fn pipe_with_comb_child_stays_c2() {
        // Fig 8's pattern: a pipeline where one peer kernel uses a custom
        // combinatorial function.
        let mut cmb = IrFunction::new("combA", ParKind::Comb);
        cmb.body.push(instr("c0"));
        let mut f0 = pipe_with_instrs("f0", 2);
        f0.body.push(call("combA", ParKind::Comb));
        let m = module_with(vec![cmb, f0, main_dispatching("f0", ParKind::Pipe)]);
        let t = extract(&m).unwrap();
        assert_eq!(t.class, ConfigClass::C2SinglePipe);
        assert_eq!(t.root.count_kind(ParKind::Comb), 1);
        assert_eq!(t.root.subtree_instrs(), 3);
    }

    #[test]
    fn par_in_par_unsupported() {
        let mut inner = IrFunction::new("inner", ParKind::Par);
        inner.body.push(call("f0", ParKind::Pipe));
        let mut outer = IrFunction::new("outer", ParKind::Par);
        outer.body.push(call("inner", ParKind::Par));
        let m = module_with(vec![
            pipe_with_instrs("f0", 1),
            inner,
            outer,
            main_dispatching("outer", ParKind::Par),
        ]);
        assert!(matches!(extract(&m), Err(IrError::UnsupportedConfig(_))));
    }

    #[test]
    fn par_inside_pipe_unsupported() {
        let mut lanes = IrFunction::new("lanes", ParKind::Par);
        lanes.body.push(call("f0", ParKind::Pipe));
        let mut top = pipe_with_instrs("top", 1);
        top.body.push(call("lanes", ParKind::Par));
        let m = module_with(vec![
            pipe_with_instrs("f0", 1),
            lanes,
            top,
            main_dispatching("top", ParKind::Pipe),
        ]);
        assert!(matches!(extract(&m), Err(IrError::UnsupportedConfig(_))));
    }

    #[test]
    fn multiple_top_level_dispatches_unsupported() {
        let mut main = IrFunction::new("main", ParKind::Seq);
        main.body.push(call("f0", ParKind::Pipe));
        main.body.push(call("f0", ParKind::Pipe));
        let m = module_with(vec![pipe_with_instrs("f0", 1), main]);
        assert!(matches!(extract(&m), Err(IrError::UnsupportedConfig(_))));
    }

    #[test]
    fn outline_is_indented() {
        let mut f1 = IrFunction::new("f1", ParKind::Par);
        f1.body.push(call("f0", ParKind::Pipe));
        let m =
            module_with(vec![pipe_with_instrs("f0", 2), f1, main_dispatching("f1", ParKind::Par)]);
        let t = extract(&m).unwrap();
        let o = t.root.outline();
        assert!(o.starts_with("par f1 [0 instrs]\n"));
        assert!(o.contains("\n  pipe f0 [2 instrs]\n"));
    }

    #[test]
    fn seq_root_classifies_c4() {
        let mut s = IrFunction::new("s0", ParKind::Seq);
        s.body.push(instr("a"));
        let m = module_with(vec![s, main_dispatching("s0", ParKind::Seq)]);
        assert_eq!(extract(&m).unwrap().class, ConfigClass::C4Sequential);
    }
}
