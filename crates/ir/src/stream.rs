//! Manage-IR: memory objects, stream objects and port declarations.
//!
//! The Manage-IR separates the pure dataflow architecture operating on data
//! streams (Compute-IR) from the control and peripheral logic that creates
//! those streams. A [`MemObject`] abstracts any entity that can source or
//! sink a stream (usually an array in a level of the OpenCL-style memory
//! hierarchy of Fig 4); a [`StreamObject`] connects a memory object to a
//! streaming port, carrying the access-pattern annotation that the
//! sustained-bandwidth model costs (section V-C).

use crate::diag::SrcLoc;
use crate::types::ScalarType;
use std::fmt;

/// OpenCL-style memory hierarchy level, following the numbering of Fig 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrSpace {
    /// `addrSpace(0)` — private memory (registers inside the PE).
    Private,
    /// `addrSpace(1)` — global memory (device DRAM).
    Global,
    /// `addrSpace(2)` — local memory (on-chip block RAMs).
    Local,
    /// `addrSpace(3)` — constant memory (DRAM, read-only).
    Constant,
    /// Vendor/extension space with its raw number (the paper's listings
    /// use e.g. `addrSpace(12)` for stream-port bindings).
    Other(u8),
}

impl AddrSpace {
    /// Numeric encoding used in the textual IR.
    pub fn number(self) -> u8 {
        match self {
            AddrSpace::Private => 0,
            AddrSpace::Global => 1,
            AddrSpace::Local => 2,
            AddrSpace::Constant => 3,
            AddrSpace::Other(n) => n,
        }
    }

    /// Decode from the numeric encoding.
    pub fn from_number(n: u8) -> AddrSpace {
        match n {
            0 => AddrSpace::Private,
            1 => AddrSpace::Global,
            2 => AddrSpace::Local,
            3 => AddrSpace::Constant,
            n => AddrSpace::Other(n),
        }
    }

    /// Whether streams from this space traverse the off-chip DRAM link
    /// (and are therefore subject to the sustained-bandwidth model).
    pub fn is_offchip(self) -> bool {
        matches!(self, AddrSpace::Global | AddrSpace::Constant)
    }
}

impl fmt::Display for AddrSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addrSpace({})", self.number())
    }
}

/// Streaming data pattern of a stream object (section III-6): the paper's
/// prototype models contiguous access and constant-stride access. The
/// authors report that fixed-stride and true random access sustain nearly
/// identical bandwidth, so `Strided` doubles as the random-access cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Unit-stride, burst-friendly access (`!"CONT"`).
    Contiguous,
    /// Constant-stride access with the given stride in elements
    /// (`!"STRIDED", !<stride>`).
    Strided {
        /// Stride between consecutive accesses, in elements.
        stride: u64,
    },
}

impl AccessPattern {
    /// Tag string used in the textual IR.
    pub fn tag(&self) -> &'static str {
        match self {
            AccessPattern::Contiguous => "CONT",
            AccessPattern::Strided { .. } => "STRIDED",
        }
    }
}

/// Direction of a stream with respect to the processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamDir {
    /// Memory → PE (an `istream` port reads it).
    Read,
    /// PE → memory (an `ostream` port writes it).
    Write,
}

/// A Manage-IR memory object:
///
/// ```text
/// %mem_p = memobj addrSpace(1) ui18, !size, !27000
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemObject {
    /// Object name (without `%`).
    pub name: String,
    /// Which memory-hierarchy level holds it.
    pub space: AddrSpace,
    /// Element type.
    pub elem_ty: ScalarType,
    /// Number of elements.
    pub len: u64,
    /// Source location of the declaration (equality-transparent).
    pub span: SrcLoc,
}

impl MemObject {
    /// Total footprint in bytes (elements × element bytes).
    pub fn bytes(&self) -> u64 {
        self.len * u64::from(self.elem_ty.bytes())
    }

    /// Total footprint in bits (used for on-chip BRAM accounting).
    pub fn bits(&self) -> u64 {
        self.len * u64::from(self.elem_ty.bits())
    }
}

impl fmt::Display for MemObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{} = memobj {} {}, !size, !{}", self.name, self.space, self.elem_ty, self.len)
    }
}

/// A Manage-IR stream object:
///
/// ```text
/// %strobj_p = streamobj %mem_p, !read, !"CONT"
/// %strobj_q = streamobj %mem_q, !write, !"STRIDED", !96
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamObject {
    /// Stream name (without `%`).
    pub name: String,
    /// Backing memory object name.
    pub mem: String,
    /// Direction with respect to the PE.
    pub dir: StreamDir,
    /// Access pattern over the backing memory.
    pub pattern: AccessPattern,
    /// Source location of the declaration (equality-transparent).
    pub span: SrcLoc,
}

impl fmt::Display for StreamObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.dir {
            StreamDir::Read => "read",
            StreamDir::Write => "write",
        };
        write!(
            f,
            "%{} = streamobj %{}, !{}, !\"{}\"",
            self.name,
            self.mem,
            dir,
            self.pattern.tag()
        )?;
        if let AccessPattern::Strided { stride } = self.pattern {
            write!(f, ", !{stride}")?;
        }
        Ok(())
    }
}

/// A Compute-IR port declaration binding a stream object to a kernel
/// argument (the paper's Fig 12, line 2):
///
/// ```text
/// @main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Qualified port name, e.g. `main.p` (without `@`).
    pub name: String,
    /// Address space annotation (the paper uses a vendor space for ports).
    pub space: AddrSpace,
    /// Element type.
    pub ty: ScalarType,
    /// Direction: `istream` or `ostream`.
    pub dir: StreamDir,
    /// Access pattern restated at the port.
    pub pattern: AccessPattern,
    /// Base offset annotation (`!0` in the listings).
    pub base_offset: i64,
    /// Name of the backing [`StreamObject`].
    pub stream: String,
    /// Source location of the declaration (equality-transparent).
    pub span: SrcLoc,
}

impl PortDecl {
    /// The unqualified argument name (`p` for `main.p`).
    pub fn arg_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

impl fmt::Display for PortDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.dir {
            StreamDir::Read => "istream",
            StreamDir::Write => "ostream",
        };
        write!(
            f,
            "@{} = {} {}, !\"{}\", !\"{}\", !{}, !\"{}\"",
            self.name,
            self.space,
            self.ty,
            dir,
            self.pattern.tag(),
            self.base_offset,
            self.stream
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addrspace_numbering_matches_fig4() {
        assert_eq!(AddrSpace::Private.number(), 0);
        assert_eq!(AddrSpace::Global.number(), 1);
        assert_eq!(AddrSpace::Local.number(), 2);
        assert_eq!(AddrSpace::Constant.number(), 3);
        assert_eq!(AddrSpace::from_number(2), AddrSpace::Local);
        assert_eq!(AddrSpace::from_number(12), AddrSpace::Other(12));
        assert_eq!(AddrSpace::Other(12).number(), 12);
    }

    #[test]
    fn offchip_classification() {
        assert!(AddrSpace::Global.is_offchip());
        assert!(AddrSpace::Constant.is_offchip());
        assert!(!AddrSpace::Local.is_offchip());
        assert!(!AddrSpace::Private.is_offchip());
    }

    #[test]
    fn memobject_footprints() {
        let m = MemObject {
            name: "mem_p".into(),
            space: AddrSpace::Global,
            elem_ty: ScalarType::UInt(18),
            len: 300,
            span: SrcLoc::none(),
        };
        assert_eq!(m.bits(), 5400);
        assert_eq!(m.bytes(), 900);
        assert_eq!(m.to_string(), "%mem_p = memobj addrSpace(1) ui18, !size, !300");
    }

    #[test]
    fn streamobject_display_contiguous_and_strided() {
        let s = StreamObject {
            name: "strobj_p".into(),
            mem: "mem_p".into(),
            dir: StreamDir::Read,
            pattern: AccessPattern::Contiguous,
            span: SrcLoc::none(),
        };
        assert_eq!(s.to_string(), "%strobj_p = streamobj %mem_p, !read, !\"CONT\"");
        let s = StreamObject {
            name: "s2".into(),
            mem: "m2".into(),
            dir: StreamDir::Write,
            pattern: AccessPattern::Strided { stride: 96 },
            span: SrcLoc::none(),
        };
        assert_eq!(s.to_string(), "%s2 = streamobj %m2, !write, !\"STRIDED\", !96");
    }

    #[test]
    fn port_decl_matches_paper_listing_shape() {
        let p = PortDecl {
            name: "main.p".into(),
            space: AddrSpace::Other(12),
            ty: ScalarType::UInt(18),
            dir: StreamDir::Read,
            pattern: AccessPattern::Contiguous,
            base_offset: 0,
            stream: "strobj_p".into(),
            span: SrcLoc::none(),
        };
        assert_eq!(
            p.to_string(),
            "@main.p = addrSpace(12) ui18, !\"istream\", !\"CONT\", !0, !\"strobj_p\""
        );
        assert_eq!(p.arg_name(), "p");
    }
}
