//! Semantic validation of TyTra-IR modules.
//!
//! Checks performed:
//!
//! * name uniqueness (functions, memory objects, streams, ports, params);
//! * SSA discipline: every local destination is assigned exactly once per
//!   function and every operand is defined before use (params, earlier
//!   statements, or global accumulators);
//! * type agreement: offset streams carry the type of their source; ports
//!   restate the element type of their backing stream's memory object;
//! * structural rules per [`ParKind`]: `par` bodies contain only calls;
//!   `comb` bodies contain only single-cycle instructions (no offsets, no
//!   calls, no reductions); `pipe` bodies may mix instructions, offsets and
//!   calls to `pipe`/`comb` children;
//! * call-site kind annotations agree with the callee's declared kind, the
//!   callee exists, arity matches, and the call graph is acyclic;
//! * the module has a `main` entry that only calls;
//! * NDRange metadata is non-degenerate.

use crate::error::{IrError, Result};
use crate::function::{IrFunction, ParKind, Stmt};
use crate::instr::Operand;
use crate::module::IrModule;
use std::collections::{HashMap, HashSet};

/// Validate a module; returns the first violation found.
pub fn validate(m: &IrModule) -> Result<()> {
    check_unique_names(m)?;
    check_manage_ir(m)?;
    for f in &m.functions {
        check_function(m, f)?;
    }
    check_main(m)?;
    check_call_graph(m)?;
    check_meta(m)?;
    Ok(())
}

fn dup_check<'a, I: Iterator<Item = &'a str>>(what: &str, names: I) -> Result<()> {
    let mut seen = HashSet::new();
    for n in names {
        if !seen.insert(n) {
            return Err(IrError::Validate(format!("duplicate {what} name `{n}`")));
        }
    }
    Ok(())
}

fn check_unique_names(m: &IrModule) -> Result<()> {
    dup_check("function", m.functions.iter().map(|f| f.name.as_str()))?;
    dup_check("memory object", m.mems.iter().map(|x| x.name.as_str()))?;
    dup_check("stream object", m.streams.iter().map(|x| x.name.as_str()))?;
    dup_check("port", m.ports.iter().map(|x| x.name.as_str()))?;
    Ok(())
}

fn check_manage_ir(m: &IrModule) -> Result<()> {
    for s in &m.streams {
        if m.mem(&s.mem).is_none() {
            return Err(IrError::Unknown { kind: "memory object", name: s.mem.clone() });
        }
    }
    for p in &m.ports {
        let Some(s) = m.stream(&p.stream) else {
            return Err(IrError::Unknown { kind: "stream object", name: p.stream.clone() });
        };
        if s.dir != p.dir {
            return Err(IrError::Validate(format!(
                "port `{}` direction disagrees with stream `{}`",
                p.name, s.name
            )));
        }
        let mem = m.mem(&s.mem).expect("checked above");
        if mem.elem_ty != p.ty {
            return Err(IrError::Validate(format!(
                "port `{}` type {} disagrees with memory `{}` element type {}",
                p.name, p.ty, mem.name, mem.elem_ty
            )));
        }
        if s.pattern != p.pattern {
            return Err(IrError::Validate(format!(
                "port `{}` access pattern disagrees with stream `{}` (the port restates the                  stream's pattern)",
                p.name, s.name
            )));
        }
    }
    Ok(())
}

fn check_function(m: &IrModule, f: &IrFunction) -> Result<()> {
    dup_check(
        &format!("parameter in `{}`", f.name),
        f.params.iter().map(|p| p.name.as_str()),
    )?;

    // Structural rules per kind.
    match f.kind {
        ParKind::Par => {
            if f.body.iter().any(|s| !matches!(s, Stmt::Call(_))) {
                return Err(IrError::Validate(format!(
                    "`par` function `{}` may contain only calls",
                    f.name
                )));
            }
            if f.body.is_empty() {
                return Err(IrError::Validate(format!(
                    "`par` function `{}` has no lanes",
                    f.name
                )));
            }
        }
        ParKind::Comb => {
            for s in &f.body {
                match s {
                    Stmt::Instr(i) if !i.is_reduction() => {}
                    Stmt::Instr(_) => {
                        return Err(IrError::Validate(format!(
                            "`comb` function `{}` may not contain reductions",
                            f.name
                        )))
                    }
                    _ => {
                        return Err(IrError::Validate(format!(
                            "`comb` function `{}` may contain only instructions",
                            f.name
                        )))
                    }
                }
            }
        }
        ParKind::Pipe | ParKind::Seq => {}
    }

    // SSA + def-before-use.
    let mut defined: HashSet<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
    for s in &f.body {
        match s {
            Stmt::Offset(o) => {
                if !defined.contains(o.src.as_str()) {
                    return Err(IrError::Validate(format!(
                        "offset `{}` in `{}` uses undefined stream `{}`",
                        o.dest, f.name, o.src
                    )));
                }
                if let Some(p) = f.param(&o.src) {
                    if p.ty != o.ty {
                        return Err(IrError::Validate(format!(
                            "offset `{}` type {} disagrees with stream `{}` type {}",
                            o.dest, o.ty, o.src, p.ty
                        )));
                    }
                }
                if !defined.insert(o.dest.as_str()) {
                    return Err(IrError::Validate(format!(
                        "SSA violation: `{}` assigned twice in `{}`",
                        o.dest, f.name
                    )));
                }
            }
            Stmt::Instr(i) => {
                if i.operands.len() != i.op.arity() {
                    return Err(IrError::Validate(format!(
                        "`{}` in `{}`: {} expects {} operands, got {}",
                        i.dest,
                        f.name,
                        i.op,
                        i.op.arity(),
                        i.operands.len()
                    )));
                }
                for (k, o) in i.operands.iter().enumerate() {
                    match o {
                        Operand::Local(n)
                            if !defined.contains(n.as_str()) => {
                                return Err(IrError::Validate(format!(
                                    "instruction `{}` in `{}` uses undefined value `%{}`",
                                    i.dest, f.name, n
                                )));
                            }
                        Operand::Global(n)
                            // A global read is only legal as the
                            // accumulator of a reduction into the same
                            // global.
                            if !(i.is_reduction() && i.dest.name() == n) => {
                                return Err(IrError::Validate(format!(
                                    "instruction `{}` in `{}` reads global `@{}` outside a reduction",
                                    i.dest, f.name, n
                                )));
                            }
                        Operand::ImmF(_) if i.ty.is_int() => {
                            return Err(IrError::Validate(format!(
                                "instruction `{}` in `{}`: float immediate as operand {} of integer op",
                                i.dest,
                                f.name,
                                k + 1
                            )));
                        }
                        _ => {}
                    }
                }
                match &i.dest {
                    crate::instr::Dest::Local(n) => {
                        if !defined.insert(n.as_str()) {
                            return Err(IrError::Validate(format!(
                                "SSA violation: `{}` assigned twice in `{}`",
                                n, f.name
                            )));
                        }
                    }
                    crate::instr::Dest::Global(_) => {
                        // Reductions may legitimately accumulate more than
                        // once (they are stateful by design); nothing to
                        // record in the local scope.
                    }
                }
            }
            Stmt::Call(c) => {
                let Some(callee) = m.function(&c.callee) else {
                    return Err(IrError::Unknown { kind: "function", name: c.callee.clone() });
                };
                if callee.kind != c.kind {
                    return Err(IrError::Validate(format!(
                        "call to `{}` in `{}` annotated `{}` but callee is `{}`",
                        c.callee,
                        f.name,
                        c.kind,
                        callee.kind
                    )));
                }
                if !c.args.is_empty() && c.args.len() != callee.params.len() {
                    return Err(IrError::Validate(format!(
                        "call to `{}` in `{}` passes {} args, callee declares {} params",
                        c.callee,
                        f.name,
                        c.args.len(),
                        callee.params.len()
                    )));
                }
            }
        }
    }
    Ok(())
}

fn check_main(m: &IrModule) -> Result<()> {
    let Some(main) = m.main() else {
        return Err(IrError::Validate("module has no `main` function".into()));
    };
    if main.instrs().next().is_some() || main.offsets().next().is_some() {
        return Err(IrError::Validate(
            "`main` must only dispatch calls (no instructions or offsets)".into(),
        ));
    }
    if main.calls().next().is_none() {
        return Err(IrError::Validate("`main` dispatches nothing".into()));
    }
    Ok(())
}

fn check_call_graph(m: &IrModule) -> Result<()> {
    // DFS cycle detection from every function (also catches cycles in
    // unreachable components).
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Visiting,
        Done,
    }
    fn dfs<'a>(
        m: &'a IrModule,
        name: &'a str,
        state: &mut HashMap<&'a str, State>,
    ) -> Result<()> {
        match state.get(name) {
            Some(State::Visiting) => {
                return Err(IrError::Validate(format!(
                    "recursive call cycle through `{name}`"
                )))
            }
            Some(State::Done) => return Ok(()),
            None => {}
        }
        state.insert(name, State::Visiting);
        if let Some(f) = m.function(name) {
            for c in f.calls() {
                dfs(m, &c.callee, state)?;
            }
        }
        state.insert(name, State::Done);
        Ok(())
    }
    let mut state = HashMap::new();
    for f in &m.functions {
        dfs(m, &f.name, &mut state)?;
    }
    Ok(())
}

fn check_meta(m: &IrModule) -> Result<()> {
    if m.meta.ndrange.contains(&0) {
        return Err(IrError::Validate("NDRange contains a zero dimension".into()));
    }
    if m.meta.nki == 0 {
        return Err(IrError::Validate("NKI must be at least 1".into()));
    }
    if let Some(f) = m.meta.freq_mhz {
        if !(f.is_finite() && f > 0.0) {
            return Err(IrError::Validate("frequency constraint must be positive".into()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::function::{Call, OffsetDecl, Param};
    use crate::instr::{Dest, Instruction, Opcode};
    use crate::types::ScalarType;

    const T: ScalarType = ScalarType::UInt(18);

    fn valid_module() -> IrModule {
        let mut b = ModuleBuilder::new("m");
        b.global_input("p", T, 64);
        b.global_output("q", T, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 1);
            let p = f.arg("p");
            let s = f.instr(Opcode::Add, T, vec![a, p]);
            f.write_out("q", s);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        b.finish_unchecked()
    }

    #[test]
    fn valid_module_passes() {
        assert!(validate(&valid_module()).is_ok());
    }

    #[test]
    fn duplicate_function_rejected() {
        let mut m = valid_module();
        m.functions.push(IrFunction::new("f0", ParKind::Pipe));
        let e = validate(&m).unwrap_err();
        assert!(e.to_string().contains("duplicate function"));
    }

    #[test]
    fn missing_main_rejected() {
        let mut m = valid_module();
        m.functions.retain(|f| f.name != "main");
        assert!(validate(&m).unwrap_err().to_string().contains("no `main`"));
    }

    #[test]
    fn undefined_operand_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("z".into()),
            Opcode::Add,
            T,
            vec![Operand::local("ghost"), Operand::Imm(1)],
        )));
        assert!(validate(&m).unwrap_err().to_string().contains("undefined value"));
    }

    #[test]
    fn double_assignment_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        let dup = Instruction::new(
            Dest::Local("d".into()),
            Opcode::Add,
            T,
            vec![Operand::local("p"), Operand::Imm(1)],
        );
        f0.body.push(Stmt::Instr(dup.clone()));
        f0.body.push(Stmt::Instr(dup));
        assert!(validate(&m).unwrap_err().to_string().contains("SSA violation"));
    }

    #[test]
    fn par_with_instructions_rejected() {
        let mut m = valid_module();
        let mut par = IrFunction::new("lanes", ParKind::Par);
        par.params.push(Param::input("p", T));
        par.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("x".into()),
            Opcode::Add,
            T,
            vec![Operand::local("p"), Operand::Imm(1)],
        )));
        m.functions.push(par);
        assert!(validate(&m).unwrap_err().to_string().contains("only calls"));
    }

    #[test]
    fn empty_par_rejected() {
        let mut m = valid_module();
        m.functions.push(IrFunction::new("lanes", ParKind::Par));
        assert!(validate(&m).unwrap_err().to_string().contains("no lanes"));
    }

    #[test]
    fn comb_with_offset_rejected() {
        let mut m = valid_module();
        let mut comb = IrFunction::new("cmb", ParKind::Comb);
        comb.params.push(Param::input("p", T));
        comb.body.push(Stmt::Offset(OffsetDecl {
            dest: "o".into(),
            ty: T,
            src: "p".into(),
            offset: 1,
        }));
        m.functions.push(comb);
        assert!(validate(&m).unwrap_err().to_string().contains("only instructions"));
    }

    #[test]
    fn call_kind_mismatch_rejected() {
        let mut m = valid_module();
        let main = m.functions.iter_mut().find(|f| f.name == "main").unwrap();
        if let Stmt::Call(c) = &mut main.body[0] {
            c.kind = ParKind::Par;
        }
        assert!(validate(&m).unwrap_err().to_string().contains("annotated"));
    }

    #[test]
    fn unknown_callee_rejected() {
        let mut m = valid_module();
        let main = m.functions.iter_mut().find(|f| f.name == "main").unwrap();
        main.body.push(Stmt::Call(Call {
            callee: "ghost".into(),
            args: vec![],
            kind: ParKind::Pipe,
        }));
        assert_eq!(
            validate(&m).unwrap_err(),
            IrError::Unknown { kind: "function", name: "ghost".into() }
        );
    }

    #[test]
    fn recursion_rejected() {
        let mut m = valid_module();
        let mut rec = IrFunction::new("r", ParKind::Pipe);
        rec.body.push(Stmt::Call(Call { callee: "r".into(), args: vec![], kind: ParKind::Pipe }));
        m.functions.push(rec);
        assert!(validate(&m).unwrap_err().to_string().contains("recursive"));
    }

    #[test]
    fn zero_ndrange_rejected() {
        let mut m = valid_module();
        m.meta.ndrange = vec![16, 0];
        assert!(validate(&m).unwrap_err().to_string().contains("zero dimension"));
    }

    #[test]
    fn zero_nki_rejected() {
        let mut m = valid_module();
        m.meta.nki = 0;
        assert!(validate(&m).unwrap_err().to_string().contains("NKI"));
    }

    #[test]
    fn float_imm_in_integer_op_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("fz".into()),
            Opcode::Mul,
            T,
            vec![Operand::local("p"), Operand::ImmF(0.5)],
        )));
        assert!(validate(&m).unwrap_err().to_string().contains("float immediate"));
    }

    #[test]
    fn stream_with_missing_mem_rejected() {
        let mut m = valid_module();
        m.streams[0].mem = "ghost".into();
        assert_eq!(
            validate(&m).unwrap_err(),
            IrError::Unknown { kind: "memory object", name: "ghost".into() }
        );
    }

    #[test]
    fn port_pattern_mismatch_rejected() {
        let mut m = valid_module();
        m.ports[0].pattern = crate::stream::AccessPattern::Strided { stride: 7 };
        assert!(validate(&m).unwrap_err().to_string().contains("access pattern"));
    }

    #[test]
    fn port_type_mismatch_rejected() {
        let mut m = valid_module();
        m.ports[0].ty = ScalarType::UInt(32);
        assert!(validate(&m).unwrap_err().to_string().contains("disagrees with memory"));
    }

    #[test]
    fn global_read_outside_reduction_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("g".into()),
            Opcode::Add,
            T,
            vec![Operand::global("acc"), Operand::Imm(1)],
        )));
        assert!(validate(&m).unwrap_err().to_string().contains("outside a reduction"));
    }
}
