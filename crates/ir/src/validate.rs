//! Semantic validation of TyTra-IR modules.
//!
//! Checks performed:
//!
//! * name uniqueness (functions, memory objects, streams, ports, params);
//! * SSA discipline: every local destination is assigned exactly once per
//!   function and every operand is defined before use (params, earlier
//!   statements, or global accumulators);
//! * type agreement: offset streams carry the type of their source; ports
//!   restate the element type of their backing stream's memory object;
//! * structural rules per [`ParKind`]: `par` bodies contain only calls;
//!   `comb` bodies contain only single-cycle instructions (no offsets, no
//!   calls, no reductions); `pipe` bodies may mix instructions, offsets and
//!   calls to `pipe`/`comb` children;
//! * call-site kind annotations agree with the callee's declared kind, the
//!   callee exists, arity matches, and the call graph is acyclic;
//! * the module has a `main` entry that only calls;
//! * NDRange metadata is non-degenerate.
//!
//! Two entry points: [`validate`] keeps the original fail-fast contract
//! (the first violation as an [`IrError`]), while [`validate_into`]
//! collects *every* violation as a [`Diagnostic`] with a stable `TL00xx`
//! code and a source span — this is what `tybec lint` drives.
//!
//! Validation diagnostic codes:
//!
//! | code   | violation                                             |
//! |--------|-------------------------------------------------------|
//! | TL0001 | duplicate name (function/mem/stream/port/parameter)   |
//! | TL0002 | reference to an unknown entity                        |
//! | TL0003 | port direction disagrees with its stream              |
//! | TL0004 | port type disagrees with the backing memory           |
//! | TL0005 | port access pattern disagrees with its stream         |
//! | TL0006 | `par` function contains a non-call statement          |
//! | TL0007 | `par` function has no lanes                           |
//! | TL0008 | `comb` function contains a reduction                  |
//! | TL0009 | `comb` function contains an offset or call            |
//! | TL0010 | use of an undefined value or stream                   |
//! | TL0011 | SSA violation: local assigned twice                   |
//! | TL0012 | offset type disagrees with its source stream          |
//! | TL0013 | instruction operand count != opcode arity             |
//! | TL0014 | global read outside a reduction                       |
//! | TL0015 | float immediate as operand of an integer op           |
//! | TL0016 | call kind annotation disagrees with callee            |
//! | TL0017 | call argument count disagrees with callee params      |
//! | TL0018 | `main` missing or malformed                           |
//! | TL0019 | recursive call cycle                                  |
//! | TL0020 | degenerate execution metadata (NDRange/NKI/freq)      |

use crate::diag::{DiagSink, Diagnostic, SrcLoc};
use crate::error::{IrError, Result};
use crate::function::{IrFunction, ParKind, Stmt};
use crate::instr::Operand;
use crate::module::IrModule;
use std::collections::{HashMap, HashSet};

/// Validate a module; returns the first violation found.
pub fn validate(m: &IrModule) -> Result<()> {
    let mut sink = DiagSink::new();
    match validate_into(m, &mut sink) {
        Some(first) => Err(first),
        None => Ok(()),
    }
}

/// Validate a module, emitting *every* violation into `sink` as `TL00xx`
/// diagnostics. Returns the first violation as an [`IrError`] (the same
/// error [`validate`] fails with), or `None` when the module is clean.
pub fn validate_into(m: &IrModule, sink: &mut DiagSink) -> Option<IrError> {
    let _sp = tytra_trace::span("ir.validate").with("module", m.name.as_str());
    let mut ctx = Ctx { sink, first: None };
    check_unique_names(m, &mut ctx);
    check_manage_ir(m, &mut ctx);
    for f in &m.functions {
        check_function(m, f, &mut ctx);
    }
    check_main(m, &mut ctx);
    check_call_graph(m, &mut ctx);
    check_meta(m, &mut ctx);
    ctx.first
}

/// Shared state of one validation run: the sink receiving all
/// diagnostics, plus the first violation for the fail-fast API.
struct Ctx<'s> {
    sink: &'s mut DiagSink,
    first: Option<IrError>,
}

impl Ctx<'_> {
    /// Report a violation whose [`IrError`] form is `Validate(msg)`.
    fn invalid(&mut self, code: &'static str, loc: SrcLoc, msg: String) {
        if self.first.is_none() {
            self.first = Some(IrError::Validate(msg.clone()));
        }
        self.sink.emit(Diagnostic::error(code, msg).with_loc(loc));
    }

    /// Report a dangling reference (`IrError::Unknown`).
    fn unknown(&mut self, loc: SrcLoc, kind: &'static str, name: &str) {
        if self.first.is_none() {
            self.first = Some(IrError::Unknown { kind, name: name.to_string() });
        }
        self.sink
            .emit(Diagnostic::error("TL0002", format!("unknown {kind} `{name}`")).with_loc(loc));
    }
}

fn dup_check<'a, I: Iterator<Item = (&'a str, SrcLoc)>>(what: &str, names: I, ctx: &mut Ctx<'_>) {
    let mut seen = HashSet::new();
    for (n, loc) in names {
        if !seen.insert(n) {
            ctx.invalid("TL0001", loc, format!("duplicate {what} name `{n}`"));
        }
    }
}

fn check_unique_names(m: &IrModule, ctx: &mut Ctx<'_>) {
    dup_check("function", m.functions.iter().map(|f| (f.name.as_str(), f.span)), ctx);
    dup_check("memory object", m.mems.iter().map(|x| (x.name.as_str(), x.span)), ctx);
    dup_check("stream object", m.streams.iter().map(|x| (x.name.as_str(), x.span)), ctx);
    dup_check("port", m.ports.iter().map(|x| (x.name.as_str(), x.span)), ctx);
}

fn check_manage_ir(m: &IrModule, ctx: &mut Ctx<'_>) {
    for s in &m.streams {
        if m.mem(&s.mem).is_none() {
            ctx.unknown(s.span, "memory object", &s.mem);
        }
    }
    for p in &m.ports {
        let Some(s) = m.stream(&p.stream) else {
            ctx.unknown(p.span, "stream object", &p.stream);
            continue;
        };
        if s.dir != p.dir {
            ctx.invalid(
                "TL0003",
                p.span,
                format!("port `{}` direction disagrees with stream `{}`", p.name, s.name),
            );
        }
        let Some(mem) = m.mem(&s.mem) else {
            continue; // dangling stream already reported above
        };
        if mem.elem_ty != p.ty {
            ctx.invalid(
                "TL0004",
                p.span,
                format!(
                    "port `{}` type {} disagrees with memory `{}` element type {}",
                    p.name, p.ty, mem.name, mem.elem_ty
                ),
            );
        }
        if s.pattern != p.pattern {
            ctx.invalid(
                "TL0005",
                p.span,
                format!(
                    "port `{}` access pattern disagrees with stream `{}` (the port restates the stream's pattern)",
                    p.name, s.name
                ),
            );
        }
    }
}

fn check_function(m: &IrModule, f: &IrFunction, ctx: &mut Ctx<'_>) {
    dup_check(
        &format!("parameter in `{}`", f.name),
        f.params.iter().map(|p| (p.name.as_str(), f.span)),
        ctx,
    );

    // Structural rules per kind.
    match f.kind {
        ParKind::Par => {
            if f.body.iter().any(|s| !matches!(s, Stmt::Call(_))) {
                ctx.invalid(
                    "TL0006",
                    f.span,
                    format!("`par` function `{}` may contain only calls", f.name),
                );
            }
            if f.body.is_empty() {
                ctx.invalid("TL0007", f.span, format!("`par` function `{}` has no lanes", f.name));
            }
        }
        ParKind::Comb => {
            for s in &f.body {
                match s {
                    Stmt::Instr(i) if !i.is_reduction() => {}
                    Stmt::Instr(i) => {
                        ctx.invalid(
                            "TL0008",
                            i.span,
                            format!("`comb` function `{}` may not contain reductions", f.name),
                        );
                    }
                    _ => {
                        ctx.invalid(
                            "TL0009",
                            f.span,
                            format!("`comb` function `{}` may contain only instructions", f.name),
                        );
                    }
                }
            }
        }
        ParKind::Pipe | ParKind::Seq => {}
    }

    // SSA + def-before-use.
    let mut defined: HashSet<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
    for s in &f.body {
        match s {
            Stmt::Offset(o) => {
                if !defined.contains(o.src.as_str()) {
                    ctx.invalid(
                        "TL0010",
                        o.span,
                        format!(
                            "offset `{}` in `{}` uses undefined stream `{}`",
                            o.dest, f.name, o.src
                        ),
                    );
                }
                if let Some(p) = f.param(&o.src) {
                    if p.ty != o.ty {
                        ctx.invalid(
                            "TL0012",
                            o.span,
                            format!(
                                "offset `{}` type {} disagrees with stream `{}` type {}",
                                o.dest, o.ty, o.src, p.ty
                            ),
                        );
                    }
                }
                if !defined.insert(o.dest.as_str()) {
                    ctx.invalid(
                        "TL0011",
                        o.span,
                        format!("SSA violation: `{}` assigned twice in `{}`", o.dest, f.name),
                    );
                }
            }
            Stmt::Instr(i) => {
                if i.operands.len() != i.op.arity() {
                    ctx.invalid(
                        "TL0013",
                        i.span,
                        format!(
                            "`{}` in `{}`: {} expects {} operands, got {}",
                            i.dest,
                            f.name,
                            i.op,
                            i.op.arity(),
                            i.operands.len()
                        ),
                    );
                }
                for (k, o) in i.operands.iter().enumerate() {
                    match o {
                        Operand::Local(n)
                            if !defined.contains(n.as_str()) => {
                                ctx.invalid(
                                    "TL0010",
                                    i.span,
                                    format!(
                                        "instruction `{}` in `{}` uses undefined value `%{}`",
                                        i.dest, f.name, n
                                    ),
                                );
                            }
                        Operand::Global(n)
                            // A global read is only legal as the
                            // accumulator of a reduction into the same
                            // global.
                            if !(i.is_reduction() && i.dest.name() == n) => {
                                ctx.invalid(
                                    "TL0014",
                                    i.span,
                                    format!(
                                        "instruction `{}` in `{}` reads global `@{}` outside a reduction",
                                        i.dest, f.name, n
                                    ),
                                );
                            }
                        Operand::ImmF(_) if i.ty.is_int() => {
                            ctx.invalid(
                                "TL0015",
                                i.span,
                                format!(
                                    "instruction `{}` in `{}`: float immediate as operand {} of integer op",
                                    i.dest,
                                    f.name,
                                    k + 1
                                ),
                            );
                        }
                        _ => {}
                    }
                }
                match &i.dest {
                    crate::instr::Dest::Local(n) => {
                        if !defined.insert(n.as_str()) {
                            ctx.invalid(
                                "TL0011",
                                i.span,
                                format!("SSA violation: `{}` assigned twice in `{}`", n, f.name),
                            );
                        }
                    }
                    crate::instr::Dest::Global(_) => {
                        // Reductions may legitimately accumulate more than
                        // once (they are stateful by design); nothing to
                        // record in the local scope.
                    }
                }
            }
            Stmt::Call(c) => {
                let Some(callee) = m.function(&c.callee) else {
                    ctx.unknown(c.span, "function", &c.callee);
                    continue;
                };
                if callee.kind != c.kind {
                    ctx.invalid(
                        "TL0016",
                        c.span,
                        format!(
                            "call to `{}` in `{}` annotated `{}` but callee is `{}`",
                            c.callee, f.name, c.kind, callee.kind
                        ),
                    );
                }
                if !c.args.is_empty() && c.args.len() != callee.params.len() {
                    ctx.invalid(
                        "TL0017",
                        c.span,
                        format!(
                            "call to `{}` in `{}` passes {} args, callee declares {} params",
                            c.callee,
                            f.name,
                            c.args.len(),
                            callee.params.len()
                        ),
                    );
                }
            }
        }
    }
}

fn check_main(m: &IrModule, ctx: &mut Ctx<'_>) {
    let Some(main) = m.main() else {
        ctx.invalid("TL0018", SrcLoc::none(), "module has no `main` function".into());
        return;
    };
    if main.instrs().next().is_some() || main.offsets().next().is_some() {
        ctx.invalid(
            "TL0018",
            main.span,
            "`main` must only dispatch calls (no instructions or offsets)".into(),
        );
    }
    if main.calls().next().is_none() {
        ctx.invalid("TL0018", main.span, "`main` dispatches nothing".into());
    }
}

fn check_call_graph(m: &IrModule, ctx: &mut Ctx<'_>) {
    // DFS cycle detection from every function (also catches cycles in
    // unreachable components). Each cycle is reported once, at the first
    // function the walk re-enters.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Visiting,
        Done,
    }
    fn dfs<'a>(
        m: &'a IrModule,
        name: &'a str,
        state: &mut HashMap<&'a str, State>,
        ctx: &mut Ctx<'_>,
    ) {
        match state.get(name) {
            Some(State::Visiting) => {
                let loc = m.function(name).map(|f| f.span).unwrap_or(SrcLoc::none());
                ctx.invalid("TL0019", loc, format!("recursive call cycle through `{name}`"));
                return;
            }
            Some(State::Done) => return,
            None => {}
        }
        state.insert(name, State::Visiting);
        if let Some(f) = m.function(name) {
            for c in f.calls() {
                dfs(m, &c.callee, state, ctx);
            }
        }
        state.insert(name, State::Done);
    }
    let mut state = HashMap::new();
    for f in &m.functions {
        dfs(m, &f.name, &mut state, ctx);
    }
}

fn check_meta(m: &IrModule, ctx: &mut Ctx<'_>) {
    if m.meta.ndrange.contains(&0) {
        ctx.invalid("TL0020", SrcLoc::none(), "NDRange contains a zero dimension".into());
    }
    if m.meta.nki == 0 {
        ctx.invalid("TL0020", SrcLoc::none(), "NKI must be at least 1".into());
    }
    if let Some(f) = m.meta.freq_mhz {
        if !(f.is_finite() && f > 0.0) {
            ctx.invalid("TL0020", SrcLoc::none(), "frequency constraint must be positive".into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::function::{Call, OffsetDecl, Param};
    use crate::instr::{Dest, Instruction, Opcode};
    use crate::types::ScalarType;

    const T: ScalarType = ScalarType::UInt(18);

    fn valid_module() -> IrModule {
        let mut b = ModuleBuilder::new("m");
        b.global_input("p", T, 64);
        b.global_output("q", T, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 1);
            let p = f.arg("p");
            let s = f.instr(Opcode::Add, T, vec![a, p]);
            f.write_out("q", s);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        b.finish_unchecked()
    }

    /// The `TL00xx` codes a module's violations produce, in order.
    fn codes_of(m: &IrModule) -> Vec<&'static str> {
        let mut sink = DiagSink::new();
        validate_into(m, &mut sink);
        sink.diagnostics().iter().map(|d| d.code).collect()
    }

    #[test]
    fn valid_module_passes() {
        assert!(validate(&valid_module()).is_ok());
        assert!(codes_of(&valid_module()).is_empty());
    }

    #[test]
    fn duplicate_function_rejected() {
        let mut m = valid_module();
        m.functions.push(IrFunction::new("f0", ParKind::Pipe));
        let e = validate(&m).unwrap_err();
        assert!(e.to_string().contains("duplicate function"));
        assert!(codes_of(&m).contains(&"TL0001"));
    }

    #[test]
    fn missing_main_rejected() {
        let mut m = valid_module();
        m.functions.retain(|f| f.name != "main");
        assert!(validate(&m).unwrap_err().to_string().contains("no `main`"));
        assert!(codes_of(&m).contains(&"TL0018"));
    }

    #[test]
    fn undefined_operand_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("z".into()),
            Opcode::Add,
            T,
            vec![Operand::local("ghost"), Operand::Imm(1)],
        )));
        assert!(validate(&m).unwrap_err().to_string().contains("undefined value"));
        assert_eq!(codes_of(&m), vec!["TL0010"]);
    }

    #[test]
    fn double_assignment_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        let dup = Instruction::new(
            Dest::Local("d".into()),
            Opcode::Add,
            T,
            vec![Operand::local("p"), Operand::Imm(1)],
        );
        f0.body.push(Stmt::Instr(dup.clone()));
        f0.body.push(Stmt::Instr(dup));
        assert!(validate(&m).unwrap_err().to_string().contains("SSA violation"));
        assert_eq!(codes_of(&m), vec!["TL0011"]);
    }

    #[test]
    fn par_with_instructions_rejected() {
        let mut m = valid_module();
        let mut par = IrFunction::new("lanes", ParKind::Par);
        par.params.push(Param::input("p", T));
        par.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("x".into()),
            Opcode::Add,
            T,
            vec![Operand::local("p"), Operand::Imm(1)],
        )));
        m.functions.push(par);
        assert!(validate(&m).unwrap_err().to_string().contains("only calls"));
        assert_eq!(codes_of(&m), vec!["TL0006"]);
    }

    #[test]
    fn empty_par_rejected() {
        let mut m = valid_module();
        m.functions.push(IrFunction::new("lanes", ParKind::Par));
        assert!(validate(&m).unwrap_err().to_string().contains("no lanes"));
        assert_eq!(codes_of(&m), vec!["TL0007"]);
    }

    #[test]
    fn comb_with_offset_rejected() {
        let mut m = valid_module();
        let mut comb = IrFunction::new("cmb", ParKind::Comb);
        comb.params.push(Param::input("p", T));
        comb.body.push(Stmt::Offset(OffsetDecl {
            dest: "o".into(),
            ty: T,
            src: "p".into(),
            offset: 1,
            span: SrcLoc::none(),
        }));
        m.functions.push(comb);
        assert!(validate(&m).unwrap_err().to_string().contains("only instructions"));
        assert_eq!(codes_of(&m), vec!["TL0009"]);
    }

    #[test]
    fn comb_with_reduction_rejected() {
        let mut m = valid_module();
        let mut comb = IrFunction::new("cmb", ParKind::Comb);
        comb.params.push(Param::input("p", T));
        comb.body.push(Stmt::Instr(Instruction::new(
            Dest::Global("acc".into()),
            Opcode::Add,
            T,
            vec![Operand::local("p"), Operand::global("acc")],
        )));
        m.functions.push(comb);
        assert!(validate(&m).unwrap_err().to_string().contains("reductions"));
        assert_eq!(codes_of(&m), vec!["TL0008"]);
    }

    #[test]
    fn call_kind_mismatch_rejected() {
        let mut m = valid_module();
        let main = m.functions.iter_mut().find(|f| f.name == "main").unwrap();
        if let Stmt::Call(c) = &mut main.body[0] {
            c.kind = ParKind::Par;
        }
        assert!(validate(&m).unwrap_err().to_string().contains("annotated"));
        assert_eq!(codes_of(&m), vec!["TL0016"]);
    }

    #[test]
    fn call_arity_mismatch_rejected() {
        let mut m = valid_module();
        let main = m.functions.iter_mut().find(|f| f.name == "main").unwrap();
        if let Stmt::Call(c) = &mut main.body[0] {
            c.args.push(Operand::local("extra"));
        }
        assert!(validate(&m).unwrap_err().to_string().contains("passes"));
        assert_eq!(codes_of(&m), vec!["TL0017"]);
    }

    #[test]
    fn unknown_callee_rejected() {
        let mut m = valid_module();
        let main = m.functions.iter_mut().find(|f| f.name == "main").unwrap();
        main.body.push(Stmt::Call(Call {
            callee: "ghost".into(),
            args: vec![],
            kind: ParKind::Pipe,
            span: SrcLoc::none(),
        }));
        assert_eq!(
            validate(&m).unwrap_err(),
            IrError::Unknown { kind: "function", name: "ghost".into() }
        );
        assert_eq!(codes_of(&m), vec!["TL0002"]);
    }

    #[test]
    fn recursion_rejected() {
        let mut m = valid_module();
        let mut rec = IrFunction::new("r", ParKind::Pipe);
        rec.body.push(Stmt::Call(Call {
            callee: "r".into(),
            args: vec![],
            kind: ParKind::Pipe,
            span: SrcLoc::none(),
        }));
        m.functions.push(rec);
        assert!(validate(&m).unwrap_err().to_string().contains("recursive"));
        assert_eq!(codes_of(&m), vec!["TL0019"]);
    }

    #[test]
    fn zero_ndrange_rejected() {
        let mut m = valid_module();
        m.meta.ndrange = vec![16, 0];
        assert!(validate(&m).unwrap_err().to_string().contains("zero dimension"));
        assert_eq!(codes_of(&m), vec!["TL0020"]);
    }

    #[test]
    fn zero_nki_rejected() {
        let mut m = valid_module();
        m.meta.nki = 0;
        assert!(validate(&m).unwrap_err().to_string().contains("NKI"));
        assert_eq!(codes_of(&m), vec!["TL0020"]);
    }

    #[test]
    fn float_imm_in_integer_op_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("fz".into()),
            Opcode::Mul,
            T,
            vec![Operand::local("p"), Operand::ImmF(0.5)],
        )));
        assert!(validate(&m).unwrap_err().to_string().contains("float immediate"));
        assert_eq!(codes_of(&m), vec!["TL0015"]);
    }

    #[test]
    fn stream_with_missing_mem_rejected() {
        let mut m = valid_module();
        m.streams[0].mem = "ghost".into();
        assert_eq!(
            validate(&m).unwrap_err(),
            IrError::Unknown { kind: "memory object", name: "ghost".into() }
        );
        assert!(codes_of(&m).contains(&"TL0002"));
    }

    #[test]
    fn port_pattern_mismatch_rejected() {
        let mut m = valid_module();
        m.ports[0].pattern = crate::stream::AccessPattern::Strided { stride: 7 };
        let e = validate(&m).unwrap_err().to_string();
        assert!(e.contains("access pattern"));
        // The once-mangled message reads cleanly: no doubled spaces.
        assert!(!e.contains("  "), "message contains a run of spaces: {e}");
        assert_eq!(codes_of(&m), vec!["TL0005"]);
    }

    #[test]
    fn port_type_mismatch_rejected() {
        let mut m = valid_module();
        m.ports[0].ty = ScalarType::UInt(32);
        assert!(validate(&m).unwrap_err().to_string().contains("disagrees with memory"));
        assert_eq!(codes_of(&m), vec!["TL0004"]);
    }

    #[test]
    fn port_direction_mismatch_rejected() {
        let mut m = valid_module();
        m.ports[0].dir = crate::stream::StreamDir::Write;
        assert!(validate(&m).unwrap_err().to_string().contains("direction"));
        assert!(codes_of(&m).contains(&"TL0003"));
    }

    #[test]
    fn global_read_outside_reduction_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("g".into()),
            Opcode::Add,
            T,
            vec![Operand::global("acc"), Operand::Imm(1)],
        )));
        assert!(validate(&m).unwrap_err().to_string().contains("outside a reduction"));
        assert_eq!(codes_of(&m), vec!["TL0014"]);
    }

    #[test]
    fn undefined_offset_source_rejected() {
        let mut m = valid_module();
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Offset(OffsetDecl {
            dest: "late".into(),
            ty: T,
            src: "nosuch".into(),
            offset: 2,
            span: SrcLoc::none(),
        }));
        assert!(validate(&m).unwrap_err().to_string().contains("undefined stream"));
        assert_eq!(codes_of(&m), vec!["TL0010"]);
    }

    #[test]
    fn sink_collects_multiple_violations() {
        let mut m = valid_module();
        m.meta.nki = 0; // TL0020
        m.meta.ndrange = vec![0]; // TL0020
        let f0 = m.functions.iter_mut().find(|f| f.name == "f0").unwrap();
        f0.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("z".into()),
            Opcode::Add,
            T,
            vec![Operand::local("ghost"), Operand::Imm(1)],
        ))); // TL0010
        let codes = codes_of(&m);
        assert_eq!(codes, vec!["TL0010", "TL0020", "TL0020"]);
        // Fail-fast API still reports the first in traversal order.
        assert!(validate(&m).unwrap_err().to_string().contains("undefined value"));
    }

    #[test]
    fn parsed_module_diagnostics_carry_spans() {
        let src = "\
!module = !\"bad\"
!ndrange = !{8}
define void @main() seq {
  call @f0() pipe
}
define void @f0(ui18 %p, out ui18 %q) pipe {
  ui18 %x = add ui18 %p, %ghost
  ui18 %q__out = or ui18 %x, 0
}
";
        let m = crate::parser::parse_unvalidated(src).unwrap();
        let mut sink = DiagSink::new();
        validate_into(&m, &mut sink);
        let d = &sink.diagnostics()[0];
        assert_eq!(d.code, "TL0010");
        let span = d.span.expect("parsed statements carry spans");
        assert_eq!(span.line, 7);
    }
}
