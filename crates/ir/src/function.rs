//! Compute-IR functions and their parallelism kinds.
//!
//! A design is a hierarchy of IR functions — roughly the equivalent of
//! modules in an HDL, but at a much higher abstraction: each function
//! carries a keyword specifying the parallelism pattern applied to its
//! body. Different parent–child and peer–peer combinations of the four
//! kinds span the FPGA design space of Fig 5 (the supported subset is
//! Fig 7).

use crate::diag::SrcLoc;
use crate::instr::{Instruction, Operand};
use crate::types::ScalarType;
use std::fmt;

/// The parallelism keyword attached to a function or call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParKind {
    /// Pipeline parallelism: the body is a streaming datapath; one
    /// work-item enters per cycle once the pipeline is full.
    Pipe,
    /// Thread parallelism: the callees execute concurrently as replicated
    /// lanes.
    Par,
    /// Sequential execution: the body's instructions share one functional
    /// unit set and execute over `NI` cycles per work-item.
    Seq,
    /// A custom single-cycle combinatorial block, inlined into its parent
    /// pipeline stage.
    Comb,
}

impl ParKind {
    /// Keyword used in the textual IR.
    pub fn keyword(self) -> &'static str {
        match self {
            ParKind::Pipe => "pipe",
            ParKind::Par => "par",
            ParKind::Seq => "seq",
            ParKind::Comb => "comb",
        }
    }

    /// Inverse of [`ParKind::keyword`].
    pub fn from_keyword(s: &str) -> Option<ParKind> {
        match s {
            "pipe" => Some(ParKind::Pipe),
            "par" => Some(ParKind::Par),
            "seq" => Some(ParKind::Seq),
            "comb" => Some(ParKind::Comb),
            _ => None,
        }
    }
}

impl fmt::Display for ParKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Direction of a function parameter (streaming port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Input stream.
    In,
    /// Output stream.
    Out,
}

/// A function parameter: a streaming port with a type and direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Port name (without the `%` sigil).
    pub name: String,
    /// Element type of the stream.
    pub ty: ScalarType,
    /// Whether data flows in or out.
    pub dir: PortDir,
}

impl Param {
    /// Input parameter.
    pub fn input(name: impl Into<String>, ty: ScalarType) -> Param {
        Param { name: name.into(), ty, dir: PortDir::In }
    }

    /// Output parameter.
    pub fn output(name: impl Into<String>, ty: ScalarType) -> Param {
        Param { name: name.into(), ty, dir: PortDir::Out }
    }
}

/// A stream-offset declaration inside a `pipe` function:
///
/// ```text
/// ui18 %pip1 = ui18 %p, !offset, !+1
/// ```
///
/// creates a new stream which is the source stream shifted by a constant
/// number of work-items. Offsets are the IR encoding of stencil
/// neighbourhood access; the hardware realization is an on-chip offset
/// buffer of `(max_positive − min_negative)` elements (the "stream control
/// / offset buffers" blocks of Fig 13).
#[derive(Debug, Clone, PartialEq)]
pub struct OffsetDecl {
    /// Name of the new offset stream (without `%`).
    pub dest: String,
    /// Element type (must match the source stream's type).
    pub ty: ScalarType,
    /// Name of the source stream (a `pipe` parameter or another offset).
    pub src: String,
    /// Offset in work-items; positive looks ahead, negative behind.
    pub offset: i64,
    /// Source location of the declaration (equality-transparent).
    pub span: SrcLoc,
}

impl fmt::Display for OffsetDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.offset >= 0 { "+" } else { "" };
        write!(
            f,
            "{} %{} = {} %{}, !offset, !{}{}",
            self.ty, self.dest, self.ty, self.src, sign, self.offset
        )
    }
}

/// A call statement: `call @f(args...) kind`.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Callee function name (without `@`).
    pub callee: String,
    /// Arguments bound to the callee's parameters, in order.
    pub args: Vec<Operand>,
    /// Parallelism kind annotation on the call site; must agree with the
    /// callee's declared kind.
    pub kind: ParKind,
    /// Source location of the call site (equality-transparent).
    pub span: SrcLoc,
}

impl fmt::Display for Call {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call @{}(", self.callee)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ") {}", self.kind)
    }
}

/// A statement in a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An SSA instruction.
    Instr(Instruction),
    /// A stream-offset declaration.
    Offset(OffsetDecl),
    /// A call to a child function.
    Call(Call),
}

impl Stmt {
    /// The instruction, if this statement is one.
    pub fn as_instr(&self) -> Option<&Instruction> {
        match self {
            Stmt::Instr(i) => Some(i),
            _ => None,
        }
    }

    /// The call, if this statement is one.
    pub fn as_call(&self) -> Option<&Call> {
        match self {
            Stmt::Call(c) => Some(c),
            _ => None,
        }
    }

    /// The offset declaration, if this statement is one.
    pub fn as_offset(&self) -> Option<&OffsetDecl> {
        match self {
            Stmt::Offset(o) => Some(o),
            _ => None,
        }
    }
}

/// A Compute-IR function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Function name (without `@`).
    pub name: String,
    /// Parallelism pattern of the body.
    pub kind: ParKind,
    /// Streaming ports.
    pub params: Vec<Param>,
    /// Body statements in program order.
    pub body: Vec<Stmt>,
    /// Source location of the function header (equality-transparent).
    pub span: SrcLoc,
}

impl IrFunction {
    /// New empty function.
    pub fn new(name: impl Into<String>, kind: ParKind) -> IrFunction {
        IrFunction {
            name: name.into(),
            kind,
            params: Vec::new(),
            body: Vec::new(),
            span: SrcLoc::none(),
        }
    }

    /// Source location of a body statement, falling back to the function
    /// header's when the statement carries none.
    pub fn stmt_loc(&self, index: usize) -> SrcLoc {
        let loc = match self.body.get(index) {
            Some(Stmt::Instr(i)) => i.span,
            Some(Stmt::Offset(o)) => o.span,
            Some(Stmt::Call(c)) => c.span,
            None => SrcLoc::none(),
        };
        if loc.get().is_some() {
            loc
        } else {
            self.span
        }
    }

    /// Iterator over the SSA instructions (not offsets or calls).
    pub fn instrs(&self) -> impl Iterator<Item = &Instruction> {
        self.body.iter().filter_map(Stmt::as_instr)
    }

    /// Iterator over calls.
    pub fn calls(&self) -> impl Iterator<Item = &Call> {
        self.body.iter().filter_map(Stmt::as_call)
    }

    /// Iterator over offset declarations.
    pub fn offsets(&self) -> impl Iterator<Item = &OffsetDecl> {
        self.body.iter().filter_map(Stmt::as_offset)
    }

    /// Number of datapath instructions, the paper's `NI` ("instructions
    /// per PE") for this function, not counting child calls.
    pub fn n_instructions(&self) -> u64 {
        self.instrs().count() as u64
    }

    /// Maximum absolute stream offset declared in this function — the
    /// paper's `Noff` contribution ("maximum offset in a stream").
    pub fn max_abs_offset(&self) -> u64 {
        self.offsets().map(|o| o.offset.unsigned_abs()).max().unwrap_or(0)
    }

    /// The offset *window* per source stream: `max_positive_offset +
    /// max_negative_offset` in elements. This is the number of elements
    /// the offset buffer for `src` must hold (and therefore its BRAM
    /// footprint together with the element width).
    pub fn offset_window(&self, src: &str) -> u64 {
        let mut max_pos: i64 = 0;
        let mut max_neg: i64 = 0;
        for o in self.offsets().filter(|o| o.src == src) {
            max_pos = max_pos.max(o.offset);
            max_neg = max_neg.min(o.offset);
        }
        (max_pos - max_neg) as u64
    }

    /// All distinct offset-source stream names, in first-use order.
    pub fn offset_sources(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for o in self.offsets() {
            if !seen.contains(&o.src.as_str()) {
                seen.push(o.src.as_str());
            }
        }
        seen
    }

    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Dest, Opcode};

    fn sample() -> IrFunction {
        let mut f = IrFunction::new("f0", ParKind::Pipe);
        f.params.push(Param::input("p", ScalarType::UInt(18)));
        f.params.push(Param::output("pnew", ScalarType::UInt(18)));
        f.body.push(Stmt::Offset(OffsetDecl {
            dest: "pip1".into(),
            ty: ScalarType::UInt(18),
            src: "p".into(),
            offset: 1,
            span: SrcLoc::none(),
        }));
        f.body.push(Stmt::Offset(OffsetDecl {
            dest: "pin1".into(),
            ty: ScalarType::UInt(18),
            src: "p".into(),
            offset: -150,
            span: SrcLoc::none(),
        }));
        f.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("1".into()),
            Opcode::Add,
            ScalarType::UInt(18),
            vec![Operand::local("pip1"), Operand::local("pin1")],
        )));
        f
    }

    #[test]
    fn kind_keywords_round_trip() {
        for k in [ParKind::Pipe, ParKind::Par, ParKind::Seq, ParKind::Comb] {
            assert_eq!(ParKind::from_keyword(k.keyword()), Some(k));
        }
        assert_eq!(ParKind::from_keyword("vector"), None);
    }

    #[test]
    fn offset_window_spans_pos_and_neg() {
        let f = sample();
        assert_eq!(f.offset_window("p"), 151);
        assert_eq!(f.offset_window("q"), 0);
        assert_eq!(f.max_abs_offset(), 150);
        assert_eq!(f.offset_sources(), vec!["p"]);
    }

    #[test]
    fn instruction_counting_ignores_offsets_and_calls() {
        let mut f = sample();
        assert_eq!(f.n_instructions(), 1);
        f.body.push(Stmt::Call(Call {
            callee: "g".into(),
            args: vec![],
            kind: ParKind::Comb,
            span: SrcLoc::none(),
        }));
        assert_eq!(f.n_instructions(), 1);
        assert_eq!(f.calls().count(), 1);
        assert_eq!(f.offsets().count(), 2);
    }

    #[test]
    fn display_offset_and_call() {
        let f = sample();
        let o = f.offsets().next().unwrap();
        assert_eq!(o.to_string(), "ui18 %pip1 = ui18 %p, !offset, !+1");
        let c = Call {
            callee: "f0".into(),
            args: vec![Operand::local("p")],
            kind: ParKind::Pipe,
            span: SrcLoc::none(),
        };
        assert_eq!(c.to_string(), "call @f0(%p) pipe");
    }

    #[test]
    fn param_lookup() {
        let f = sample();
        assert_eq!(f.param("p").unwrap().dir, PortDir::In);
        assert_eq!(f.param("pnew").unwrap().dir, PortDir::Out);
        assert!(f.param("zz").is_none());
    }
}
