//! String interning for the arena IR.
//!
//! Every name in a module — function, parameter, SSA value, memory
//! object, stream, port — is stored once in a [`SymbolTable`] and
//! referred to by a dense 4-byte [`Symbol`] everywhere else. The table
//! owns a single contiguous byte buffer plus an `(offset, len)` span per
//! symbol, so resolving a symbol is two array reads and a slice — no
//! pointer chasing, no per-string allocation, and the whole name set of
//! a module lives in two cache-friendly allocations.
//!
//! Lookup during interning uses an open-addressed FNV-1a index (the same
//! hash family as [`crate::fingerprint::StableHasher`], though the index
//! is process-local and never leaks into fingerprints, which always hash
//! the resolved bytes).

/// Dense handle to an interned string. `Symbol(0)` is always the empty
/// string, so `Symbol::default()` is a valid "no name".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The interned empty string.
    pub const EMPTY: Symbol = Symbol(0);

    /// Index into the table's span column.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw dense index, for packing into wider columns.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from [`raw`][Symbol::raw]. The caller must have
    /// obtained the value from the same table.
    #[inline]
    pub(crate) fn from_raw(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

impl Default for Symbol {
    fn default() -> Symbol {
        Symbol::EMPTY
    }
}

/// Append-only interner: contiguous byte storage, span table, and an
/// open-addressed hash index for dedup on insert.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    bytes: String,
    spans: Vec<(u32, u32)>,
    /// Open-addressed slots holding `symbol_index + 1` (0 = empty).
    slots: Vec<u32>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Default for SymbolTable {
    fn default() -> SymbolTable {
        SymbolTable::new()
    }
}

impl SymbolTable {
    /// Fresh table holding only the empty string as [`Symbol::EMPTY`].
    pub fn new() -> SymbolTable {
        let mut t = SymbolTable { bytes: String::new(), spans: Vec::new(), slots: vec![0; 16] };
        let e = t.intern("");
        debug_assert_eq!(e, Symbol::EMPTY);
        t
    }

    /// Number of distinct symbols (including the empty string).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when only the empty string is interned.
    pub fn is_empty(&self) -> bool {
        self.spans.len() <= 1
    }

    /// Intern `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if self.spans.len() * 2 >= self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (fnv(s) as usize) & mask;
        loop {
            match self.slots[i] {
                0 => break,
                slot => {
                    let sym = Symbol(slot - 1);
                    if self.resolve(sym) == s {
                        return sym;
                    }
                    i = (i + 1) & mask;
                }
            }
        }
        let sym = Symbol(u32::try_from(self.spans.len()).expect("symbol table overflow"));
        let off = u32::try_from(self.bytes.len()).expect("symbol bytes overflow");
        let len = u32::try_from(s.len()).expect("symbol too long");
        self.bytes.push_str(s);
        self.spans.push((off, len));
        self.slots[i] = sym.0 + 1;
        sym
    }

    /// Look up `s` without inserting.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        let mask = self.slots.len() - 1;
        let mut i = (fnv(s) as usize) & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                slot => {
                    let sym = Symbol(slot - 1);
                    if self.resolve(sym) == s {
                        return Some(sym);
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    /// The string a symbol stands for.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        let (off, len) = self.spans[sym.index()];
        &self.bytes[off as usize..(off + len) as usize]
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        let mut slots = vec![0u32; new_len];
        let mask = new_len - 1;
        for (idx, &(off, len)) in self.spans.iter().enumerate() {
            let s = &self.bytes[off as usize..(off + len) as usize];
            let mut i = (fnv(s) as usize) & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32 + 1;
        }
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_is_symbol_zero() {
        let t = SymbolTable::new();
        assert_eq!(t.resolve(Symbol::EMPTY), "");
        assert_eq!(t.lookup(""), Some(Symbol::EMPTY));
    }

    #[test]
    fn interning_dedups_and_resolves() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut t = SymbolTable::new();
        let syms: Vec<(String, Symbol)> =
            (0..500).map(|i| format!("name_{i}")).map(|s| (s.clone(), t.intern(&s))).collect();
        for (s, sym) in &syms {
            assert_eq!(t.resolve(*sym), s.as_str());
            assert_eq!(t.lookup(s), Some(*sym));
        }
        assert_eq!(t.len(), 501); // 500 + empty
    }

    #[test]
    fn prefix_confusion_is_impossible() {
        // "ab" stored next to "c" must not make "abc" resolve.
        let mut t = SymbolTable::new();
        let ab = t.intern("ab");
        let c = t.intern("c");
        assert_eq!(t.lookup("abc"), None);
        assert_eq!(t.resolve(ab), "ab");
        assert_eq!(t.resolve(c), "c");
    }
}
