//! The top-level IR module: Manage-IR + Compute-IR + execution metadata.

use crate::function::{IrFunction, ParKind};
use crate::stream::{MemObject, PortDecl, StreamObject};
use std::fmt;

/// Memory-execution form (section III-5, Fig 6): how the memory hierarchy
/// is traversed across the `NKI` kernel-instance iterations. The
/// throughput expressions (Eqs 1–3) differ per form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemForm {
    /// Form A: every kernel instance transports all `NDRange` data between
    /// host and device DRAM.
    A,
    /// Form B: the host moves data to/from global memory once; iterations
    /// stream from device DRAM.
    B,
    /// Form C: the working set fits in on-chip local memory (BRAM); all
    /// iterations are compute-bound.
    C,
    /// Extension (the paper's tiling future-work note): the index space is
    /// tiled so that a fraction `1/tiles` of the set is BRAM-resident at a
    /// time; interpolates between Forms B (`tiles = NGS`) and C
    /// (`tiles = 1`).
    Tiled {
        /// Number of tiles the NDRange is split into.
        tiles: u32,
    },
}

impl MemForm {
    /// Tag used in the textual IR metadata (`!form = !"B"`). Borrowed
    /// (allocation-free) for the paper's three letter forms; only the
    /// `Tiled` extension pays a formatting allocation. Hot paths that
    /// print forms should go through `Display`, which never allocates.
    pub fn tag(&self) -> std::borrow::Cow<'static, str> {
        match self {
            MemForm::A => std::borrow::Cow::Borrowed("A"),
            MemForm::B => std::borrow::Cow::Borrowed("B"),
            MemForm::C => std::borrow::Cow::Borrowed("C"),
            MemForm::Tiled { tiles } => std::borrow::Cow::Owned(format!("T{tiles}")),
        }
    }

    /// Parse a metadata tag.
    pub fn from_tag(s: &str) -> Option<MemForm> {
        match s {
            "A" => Some(MemForm::A),
            "B" => Some(MemForm::B),
            "C" => Some(MemForm::C),
            _ => {
                let n: u32 = s.strip_prefix('T')?.parse().ok()?;
                (n > 0).then_some(MemForm::Tiled { tiles: n })
            }
        }
    }
}

impl fmt::Display for MemForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemForm::A => f.write_str("A"),
            MemForm::B => f.write_str("B"),
            MemForm::C => f.write_str("C"),
            MemForm::Tiled { tiles } => write!(f, "T{tiles}"),
        }
    }
}

/// Execution metadata attached to a module: the kernel-instance geometry
/// of the OpenCL-style execution model (section III-3).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecMeta {
    /// The NDRange: global size per dimension. The paper's `NGS` is the
    /// product.
    pub ndrange: Vec<u64>,
    /// `NKI`: how many times the kernel instance executes over all `NGS`
    /// work-items (e.g. 1000 SOR iterations).
    pub nki: u64,
    /// The memory-execution form.
    pub form: MemForm,
    /// Optional clock constraint in MHz; when absent the cost model's
    /// frequency estimator decides `FD`.
    pub freq_mhz: Option<f64>,
    /// `DV`: degree of vectorization per lane — how many elements each
    /// pipeline lane consumes per cycle (Table I). 1 for scalar lanes.
    pub vect: u32,
}

impl ExecMeta {
    /// `NGS`: global size of work-items in the NDRange.
    pub fn global_size(&self) -> u64 {
        self.ndrange.iter().product::<u64>().max(1)
    }
}

impl Default for ExecMeta {
    fn default() -> ExecMeta {
        ExecMeta { ndrange: vec![1], nki: 1, form: MemForm::B, freq_mhz: None, vect: 1 }
    }
}

/// A complete TyTra-IR design variant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrModule {
    /// Module (design) name.
    pub name: String,
    /// Manage-IR memory objects.
    pub mems: Vec<MemObject>,
    /// Manage-IR stream objects.
    pub streams: Vec<StreamObject>,
    /// Compute-IR port declarations binding streams to kernel arguments.
    pub ports: Vec<PortDecl>,
    /// Compute-IR functions, including `main`.
    pub functions: Vec<IrFunction>,
    /// Execution metadata.
    pub meta: ExecMeta,
}

impl IrModule {
    /// New empty module with the given name.
    pub fn new(name: impl Into<String>) -> IrModule {
        IrModule { name: name.into(), ..Default::default() }
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The entry function, conventionally `main`.
    pub fn main(&self) -> Option<&IrFunction> {
        self.function("main")
    }

    /// Look up a memory object.
    pub fn mem(&self, name: &str) -> Option<&MemObject> {
        self.mems.iter().find(|m| m.name == name)
    }

    /// Look up a stream object.
    pub fn stream(&self, name: &str) -> Option<&StreamObject> {
        self.streams.iter().find(|s| s.name == name)
    }

    /// Look up a port declaration by its qualified name.
    pub fn port(&self, name: &str) -> Option<&PortDecl> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Total SSA instruction count over every function (static count; the
    /// per-PE `NI` of the throughput model is computed per configuration by
    /// the cost crate).
    pub fn total_instructions(&self) -> u64 {
        self.functions.iter().map(IrFunction::n_instructions).sum()
    }

    /// Number of parallel kernel lanes, `KNL`: the replication factor of
    /// pipeline lanes. Derived from `par` functions: the number of calls
    /// inside each `par` body, multiplied down the call chain from `main`.
    /// A design with no `par` level has one lane.
    pub fn kernel_lanes(&self) -> u64 {
        fn lanes_of(m: &IrModule, fname: &str) -> u64 {
            let Some(f) = m.function(fname) else { return 1 };
            match f.kind {
                ParKind::Par => {
                    // Each call is a lane; nested structure multiplies.
                    f.calls().map(|c| lanes_of(m, &c.callee)).sum::<u64>().max(1)
                }
                _ => {
                    // Pipeline/seq: lanes do not multiply across peers;
                    // take the max replication among children.
                    f.calls().map(|c| lanes_of(m, &c.callee)).max().unwrap_or(1)
                }
            }
        }
        // `main` is a plain dispatcher: its single call's subtree decides.
        let Some(main) = self.main() else { return 1 };
        main.calls().map(|c| lanes_of(self, &c.callee)).max().unwrap_or(1)
    }

    /// Iterate over the functions reachable from `main` in call order
    /// (preorder). Unreachable functions are excluded.
    pub fn reachable_functions(&self) -> Vec<&IrFunction> {
        let mut out = Vec::new();
        let mut stack = vec!["main"];
        let mut seen: Vec<&str> = Vec::new();
        while let Some(name) = stack.pop() {
            if seen.contains(&name) {
                continue;
            }
            seen.push(name);
            if let Some(f) = self.function(name) {
                out.push(f);
                // Push in reverse so preorder visits calls left-to-right.
                let callees: Vec<&str> = f.calls().map(|c| c.callee.as_str()).collect();
                for c in callees.into_iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Call, Stmt};
    use crate::instr::Operand;

    fn call(f: &str, kind: ParKind) -> Stmt {
        Stmt::Call(Call {
            callee: f.into(),
            args: vec![Operand::local("p")],
            kind,
            span: crate::diag::SrcLoc::none(),
        })
    }

    /// main -> f1(par) -> 4 × f0(pipe)
    fn four_lane() -> IrModule {
        let mut m = IrModule::new("sor4");
        let f0 = IrFunction::new("f0", ParKind::Pipe);
        let mut f1 = IrFunction::new("f1", ParKind::Par);
        for _ in 0..4 {
            f1.body.push(call("f0", ParKind::Pipe));
        }
        let mut main = IrFunction::new("main", ParKind::Seq);
        main.body.push(call("f1", ParKind::Par));
        m.functions = vec![f0, f1, main];
        m
    }

    #[test]
    fn memform_tags_round_trip() {
        for f in [MemForm::A, MemForm::B, MemForm::C, MemForm::Tiled { tiles: 8 }] {
            assert_eq!(MemForm::from_tag(&f.tag()), Some(f));
        }
        assert_eq!(MemForm::from_tag("D"), None);
        assert_eq!(MemForm::from_tag("T0"), None);
        assert_eq!(MemForm::from_tag("Tx"), None);
    }

    #[test]
    fn global_size_is_ndrange_product() {
        let meta = ExecMeta {
            ndrange: vec![24, 24, 24],
            nki: 1000,
            form: MemForm::B,
            freq_mhz: None,
            vect: 1,
        };
        assert_eq!(meta.global_size(), 13824);
        let empty = ExecMeta { ndrange: vec![], ..ExecMeta::default() };
        assert_eq!(empty.global_size(), 1);
    }

    #[test]
    fn kernel_lanes_single_pipe_is_one() {
        let mut m = IrModule::new("sor1");
        let f0 = IrFunction::new("f0", ParKind::Pipe);
        let mut main = IrFunction::new("main", ParKind::Seq);
        main.body.push(call("f0", ParKind::Pipe));
        m.functions = vec![f0, main];
        assert_eq!(m.kernel_lanes(), 1);
    }

    #[test]
    fn kernel_lanes_counts_par_replication() {
        assert_eq!(four_lane().kernel_lanes(), 4);
    }

    #[test]
    fn kernel_lanes_empty_module_is_one() {
        assert_eq!(IrModule::new("x").kernel_lanes(), 1);
    }

    #[test]
    fn reachable_functions_preorder_and_dedup() {
        let m = four_lane();
        let names: Vec<&str> = m.reachable_functions().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["main", "f1", "f0"]);
    }

    #[test]
    fn lookups() {
        let m = four_lane();
        assert!(m.function("f1").is_some());
        assert!(m.main().is_some());
        assert!(m.function("zzz").is_none());
        assert_eq!(m.total_instructions(), 0);
    }
}
