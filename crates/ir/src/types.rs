//! Scalar types of the TyTra-IR.
//!
//! The IR is strongly and statically typed. Following the paper's listings,
//! unsigned integers are written `ui<W>` (e.g. `ui18` — the 18-bit words of
//! the SOR kernel, matching the Stratix-V M20K/DSP native widths), signed
//! integers `si<W>`, and IEEE-754 floats `f32`/`f64`.

use std::fmt;

/// A scalar value type carried by a stream or produced by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// Unsigned integer of the given bit width (`ui<W>`).
    UInt(u16),
    /// Signed two's-complement integer of the given bit width (`si<W>`).
    Int(u16),
    /// IEEE-754 binary float; width must be 32 or 64 (`f32` / `f64`).
    Float(u16),
}

impl ScalarType {
    /// Bit width of the type.
    #[inline]
    pub fn bits(self) -> u16 {
        match self {
            ScalarType::UInt(w) | ScalarType::Int(w) | ScalarType::Float(w) => w,
        }
    }

    /// Width in bytes, rounded up to the next whole byte. This is the
    /// footprint of one element when streamed over a byte-addressed link
    /// (host DMA or DRAM burst), i.e. the `NWPT` word size.
    #[inline]
    pub fn bytes(self) -> u32 {
        u32::from(self.bits()).div_ceil(8)
    }

    /// True for `f32`/`f64`.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float(_))
    }

    /// True for `ui*`/`si*`.
    #[inline]
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// True for signed integer types.
    #[inline]
    pub fn is_signed(self) -> bool {
        matches!(self, ScalarType::Int(_) | ScalarType::Float(_))
    }

    /// Whether the width is legal: integers 1..=128 bits, floats 32/64.
    pub fn is_valid(self) -> bool {
        match self {
            ScalarType::UInt(w) | ScalarType::Int(w) => (1..=128).contains(&w),
            ScalarType::Float(w) => w == 32 || w == 64,
        }
    }

    /// Parse a type token such as `ui18`, `si32` or `f32`.
    pub fn parse_token(tok: &str) -> Option<ScalarType> {
        let (ctor, digits): (fn(u16) -> ScalarType, &str) = if let Some(r) = tok.strip_prefix("ui")
        {
            (ScalarType::UInt, r)
        } else if let Some(r) = tok.strip_prefix("si") {
            (ScalarType::Int, r)
        } else if let Some(r) = tok.strip_prefix('f') {
            (ScalarType::Float, r)
        } else {
            return None;
        };
        let w: u16 = digits.parse().ok()?;
        let t = ctor(w);
        t.is_valid().then_some(t)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::UInt(w) => write!(f, "ui{w}"),
            ScalarType::Int(w) => write!(f, "si{w}"),
            ScalarType::Float(w) => write!(f, "f{w}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_bytes() {
        assert_eq!(ScalarType::UInt(18).bits(), 18);
        assert_eq!(ScalarType::UInt(18).bytes(), 3);
        assert_eq!(ScalarType::Int(32).bytes(), 4);
        assert_eq!(ScalarType::Float(64).bytes(), 8);
        assert_eq!(ScalarType::UInt(1).bytes(), 1);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for t in [
            ScalarType::UInt(18),
            ScalarType::Int(7),
            ScalarType::UInt(64),
            ScalarType::Float(32),
            ScalarType::Float(64),
        ] {
            assert_eq!(ScalarType::parse_token(&t.to_string()), Some(t));
        }
    }

    #[test]
    fn parse_rejects_bad_tokens() {
        assert_eq!(ScalarType::parse_token("u18"), None);
        assert_eq!(ScalarType::parse_token("ui0"), None);
        assert_eq!(ScalarType::parse_token("ui300"), None);
        assert_eq!(ScalarType::parse_token("f16"), None);
        assert_eq!(ScalarType::parse_token("f"), None);
        assert_eq!(ScalarType::parse_token("int"), None);
        assert_eq!(ScalarType::parse_token(""), None);
    }

    #[test]
    fn classification() {
        assert!(ScalarType::Float(32).is_float());
        assert!(!ScalarType::Float(32).is_int());
        assert!(ScalarType::UInt(8).is_int());
        assert!(!ScalarType::UInt(8).is_signed());
        assert!(ScalarType::Int(8).is_signed());
        assert!(ScalarType::Float(64).is_signed());
    }
}
