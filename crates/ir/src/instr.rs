//! SSA instructions of the Compute-IR.
//!
//! All computations are expressed as Static Single Assignments over local
//! values (`%name`) and global reduction accumulators (`@name`), e.g.
//!
//! ```text
//! ui18 %1 = mul ui18 %p_i_p1, %cn2l
//! ui18 @sorErrAcc = add ui18 %sorErr, @sorErrAcc
//! ```
//!
//! The instruction set is a subset of LLVM-IR arithmetic plus a few
//! FPGA-friendly primitives (`min`/`max`/`abs`/`select`/`sqrt`). An
//! instruction writing a global destination is a *reduction* over the
//! stream (the paper's "reduction operation on global variable").

use crate::diag::SrcLoc;
use crate::types::ScalarType;
use std::fmt;

/// Operation codes of the Compute-IR instruction set.
///
/// Integer and floating-point flavours share opcodes; the instruction's
/// [`ScalarType`] selects the functional-unit family (an `add` on `f32`
/// costs as a floating-point adder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical/arithmetic shift right (per signedness).
    Shr,
    /// Compare equal (1-bit result, carried in the instruction type).
    CmpEq,
    /// Compare not-equal.
    CmpNe,
    /// Compare less-than.
    CmpLt,
    /// Compare less-or-equal.
    CmpLe,
    /// Compare greater-than.
    CmpGt,
    /// Compare greater-or-equal.
    CmpGe,
    /// Two-way multiplexer: `select cond, a, b`.
    Select,
    /// Minimum of two operands.
    Min,
    /// Maximum of two operands.
    Max,
    /// Absolute value.
    Abs,
    /// Arithmetic negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Square root (float only in practice; integer isqrt allowed).
    Sqrt,
}

impl Opcode {
    /// All opcodes, for calibration sweeps and property tests.
    pub const ALL: [Opcode; 23] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::CmpEq,
        Opcode::CmpNe,
        Opcode::CmpLt,
        Opcode::CmpLe,
        Opcode::CmpGt,
        Opcode::CmpGe,
        Opcode::Select,
        Opcode::Min,
        Opcode::Max,
        Opcode::Abs,
        Opcode::Neg,
        Opcode::Not,
        Opcode::Sqrt,
    ];

    /// Number of operands the opcode takes.
    pub fn arity(self) -> usize {
        match self {
            Opcode::Abs | Opcode::Neg | Opcode::Not | Opcode::Sqrt => 1,
            Opcode::Select => 3,
            _ => 2,
        }
    }

    /// Mnemonic used in the textual IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Rem => "rem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::CmpEq => "cmpeq",
            Opcode::CmpNe => "cmpne",
            Opcode::CmpLt => "cmplt",
            Opcode::CmpLe => "cmple",
            Opcode::CmpGt => "cmpgt",
            Opcode::CmpGe => "cmpge",
            Opcode::Select => "select",
            Opcode::Min => "min",
            Opcode::Max => "max",
            Opcode::Abs => "abs",
            Opcode::Neg => "neg",
            Opcode::Not => "not",
            Opcode::Sqrt => "sqrt",
        }
    }

    /// Inverse of [`Opcode::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|o| o.mnemonic() == s)
    }

    /// Whether the result of the opcode is a comparison flag (cost models
    /// treat these as 1-bit datapaths regardless of declared width).
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            Opcode::CmpEq
                | Opcode::CmpNe
                | Opcode::CmpLt
                | Opcode::CmpLe
                | Opcode::CmpGt
                | Opcode::CmpGe
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An operand of an instruction or call.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A local SSA value or streaming port, `%name`.
    Local(String),
    /// A global value (reduction accumulator or module-level port),
    /// `@name`.
    Global(String),
    /// An integer immediate.
    Imm(i64),
    /// A floating-point immediate.
    ImmF(f64),
}

impl Operand {
    /// Local operand from anything string-like.
    pub fn local(name: impl Into<String>) -> Operand {
        Operand::Local(name.into())
    }

    /// Global operand from anything string-like.
    pub fn global(name: impl Into<String>) -> Operand {
        Operand::Global(name.into())
    }

    /// The referenced name, if the operand is a value reference.
    pub fn name(&self) -> Option<&str> {
        match self {
            Operand::Local(n) | Operand::Global(n) => Some(n),
            _ => None,
        }
    }

    /// True if the operand is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Imm(_) | Operand::ImmF(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Local(n) => write!(f, "%{n}"),
            Operand::Global(n) => write!(f, "@{n}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::ImmF(v) => {
                // Keep a decimal point so the parser can tell float
                // immediates apart from integer ones.
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// Destination of an instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dest {
    /// A fresh local SSA value (`%name`).
    Local(String),
    /// A global reduction accumulator (`@name`); the instruction folds its
    /// first operand into the accumulator once per work-item.
    Global(String),
}

impl Dest {
    /// The destination's bare name.
    pub fn name(&self) -> &str {
        match self {
            Dest::Local(n) | Dest::Global(n) => n,
        }
    }

    /// True if this is a reduction accumulator destination.
    pub fn is_global(&self) -> bool {
        matches!(self, Dest::Global(_))
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Local(n) => write!(f, "%{n}"),
            Dest::Global(n) => write!(f, "@{n}"),
        }
    }
}

/// One SSA instruction: `ty dest = op ty opnd, opnd, ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Where the result goes.
    pub dest: Dest,
    /// The operation.
    pub op: Opcode,
    /// Type of the operands and the result.
    pub ty: ScalarType,
    /// Operand list; length must equal `op.arity()`.
    pub operands: Vec<Operand>,
    /// Source location of the instruction (equality-transparent).
    pub span: SrcLoc,
}

impl Instruction {
    /// Create an instruction, checking arity in debug builds.
    pub fn new(dest: Dest, op: Opcode, ty: ScalarType, operands: Vec<Operand>) -> Instruction {
        debug_assert_eq!(operands.len(), op.arity(), "arity mismatch for {op}");
        Instruction { dest, op, ty, operands, span: SrcLoc::none() }
    }

    /// Same instruction with a source location recorded.
    pub fn with_span(mut self, span: SrcLoc) -> Instruction {
        self.span = span;
        self
    }

    /// Whether the instruction is a reduction (writes a global
    /// accumulator).
    pub fn is_reduction(&self) -> bool {
        self.dest.is_global()
    }

    /// Whether any operand is a compile-time constant — synthesis tools
    /// strength-reduce these (e.g. constant multiply → shift-add network),
    /// which the synthesis emulator models.
    pub fn has_const_operand(&self) -> bool {
        self.operands.iter().any(Operand::is_const)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} = {} {} ", self.ty, self.dest, self.op, self.ty)?;
        for (i, o) in self.operands.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(Opcode::Add.arity(), 2);
        assert_eq!(Opcode::Select.arity(), 3);
        assert_eq!(Opcode::Abs.arity(), 1);
        assert_eq!(Opcode::Sqrt.arity(), 1);
    }

    #[test]
    fn mnemonic_round_trip_all() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn compare_classification() {
        assert!(Opcode::CmpLt.is_compare());
        assert!(!Opcode::Min.is_compare());
    }

    #[test]
    fn instruction_display() {
        let i = Instruction::new(
            Dest::Local("1".into()),
            Opcode::Mul,
            ScalarType::UInt(18),
            vec![Operand::local("p_i_p1"), Operand::local("cn2l")],
        );
        assert_eq!(i.to_string(), "ui18 %1 = mul ui18 %p_i_p1, %cn2l");
        assert!(!i.is_reduction());
    }

    #[test]
    fn reduction_display() {
        let i = Instruction::new(
            Dest::Global("sorErrAcc".into()),
            Opcode::Add,
            ScalarType::UInt(18),
            vec![Operand::local("sorErr"), Operand::global("sorErrAcc")],
        );
        assert_eq!(i.to_string(), "ui18 @sorErrAcc = add ui18 %sorErr, @sorErrAcc");
        assert!(i.is_reduction());
    }

    #[test]
    fn const_operand_detection() {
        let i = Instruction::new(
            Dest::Local("x".into()),
            Opcode::Mul,
            ScalarType::UInt(32),
            vec![Operand::local("a"), Operand::Imm(3)],
        );
        assert!(i.has_const_operand());
        assert!(i.operands[1].is_const());
        assert_eq!(i.operands[0].name(), Some("a"));
        assert_eq!(i.operands[1].name(), None);
    }

    #[test]
    fn float_imm_display_keeps_point() {
        assert_eq!(Operand::ImmF(2.0).to_string(), "2.0");
        assert_eq!(Operand::ImmF(0.5).to_string(), "0.5");
    }
}
