//! Error types shared across the IR crate.

use std::fmt;

/// Any error raised while parsing, building or validating TyTra-IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Lexical error in a `.tirl` source: unexpected character.
    Lex {
        /// 1-based line number.
        line: u32,
        /// 1-based column number.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// Syntactic error in a `.tirl` source.
    Parse {
        /// 1-based line number.
        line: u32,
        /// 1-based column number.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// Semantic error found by [`crate::validate()`][crate::validate::validate].
    Validate(String),
    /// A name lookup failed (function, memory object, stream, value).
    Unknown {
        /// What kind of entity was looked up (e.g. `"function"`).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// The design uses a function-nesting pattern outside the supported
    /// configuration set of Fig 7.
    UnsupportedConfig(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Lex { line, col, msg } => {
                write!(f, "lexical error at {line}:{col}: {msg}")
            }
            IrError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            IrError::Validate(msg) => write!(f, "validation error: {msg}"),
            IrError::Unknown { kind, name } => write!(f, "unknown {kind}: `{name}`"),
            IrError::UnsupportedConfig(msg) => {
                write!(f, "unsupported configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = IrError::Lex { line: 3, col: 7, msg: "bad char `$`".into() };
        assert_eq!(e.to_string(), "lexical error at 3:7: bad char `$`");
        let e = IrError::Parse { line: 1, col: 1, msg: "expected `define`".into() };
        assert!(e.to_string().contains("expected `define`"));
        let e = IrError::Unknown { kind: "function", name: "f9".into() };
        assert_eq!(e.to_string(), "unknown function: `f9`");
        let e = IrError::Validate("dup".into());
        assert!(e.to_string().starts_with("validation error"));
        let e = IrError::UnsupportedConfig("par inside par".into());
        assert!(e.to_string().contains("par inside par"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = IrError::Validate("x".into());
        let b = IrError::Validate("x".into());
        assert_eq!(a, b);
    }
}
