//! Error types shared across the IR crate — and, through
//! [`TybecError`], the whole pipeline.
//!
//! Two layers:
//!
//! * [`IrError`] — the IR crate's own error: lexing, parsing,
//!   validation, name resolution, unsupported configurations. Kept as a
//!   plain enum so parser tests can match on variants.
//! * [`TybecError`] — the structured, categorized error every later
//!   stage (estimator, simulator, search, CLI) speaks. It carries an
//!   [`ErrorCategory`] (which the CLI maps to a distinct exit code), an
//!   optional source [`Span`], a message, and an optional chained cause
//!   (`From`-chained: `?` on an `IrError` inside an estimator pass
//!   produces a `TybecError` with the span and category preserved).

use crate::diag::Span;
use std::fmt;

/// Any error raised while parsing, building or validating TyTra-IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Lexical error in a `.tirl` source: unexpected character.
    Lex {
        /// 1-based line number.
        line: u32,
        /// 1-based column number.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// Syntactic error in a `.tirl` source.
    Parse {
        /// 1-based line number.
        line: u32,
        /// 1-based column number.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// Semantic error found by [`crate::validate()`][crate::validate::validate].
    Validate(String),
    /// A name lookup failed (function, memory object, stream, value).
    Unknown {
        /// What kind of entity was looked up (e.g. `"function"`).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// The design uses a function-nesting pattern outside the supported
    /// configuration set of Fig 7.
    UnsupportedConfig(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Lex { line, col, msg } => {
                write!(f, "lexical error at {line}:{col}: {msg}")
            }
            IrError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            IrError::Validate(msg) => write!(f, "validation error: {msg}"),
            IrError::Unknown { kind, name } => write!(f, "unknown {kind}: `{name}`"),
            IrError::UnsupportedConfig(msg) => {
                write!(f, "unsupported configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, IrError>;

/// What stage of the pipeline an error belongs to.
///
/// Categories are coarse on purpose: they are the CLI's exit-code
/// vocabulary (`tybec` exits with [`exit_code`][ErrorCategory::exit_code]
/// when a command fails with a `TybecError`), and the fuzz harness's
/// crash-triage buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    /// Lexical error in a `.tirl` source.
    Lex,
    /// Syntactic error in a `.tirl` source.
    Parse,
    /// Semantic validation failure.
    Validate,
    /// Function-nesting pattern outside the supported Fig 7 set, or a
    /// failed name lookup while extracting the configuration tree.
    Config,
    /// Cost-model failure (schedule, resource, clock, throughput).
    Estimate,
    /// Synthesis-emulator or cycle-simulator failure, including
    /// degenerate numeric inputs (zero frequency, zero bandwidth).
    Sim,
    /// Design-space search failure.
    Search,
    /// Filesystem or OS error.
    Io,
    /// A bug: an invariant the pipeline promised to hold was violated
    /// (e.g. a caught panic inside a worker).
    Internal,
}

impl ErrorCategory {
    /// Stable lower-case label used in rendered messages.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCategory::Lex => "lex",
            ErrorCategory::Parse => "parse",
            ErrorCategory::Validate => "validate",
            ErrorCategory::Config => "config",
            ErrorCategory::Estimate => "estimate",
            ErrorCategory::Sim => "sim",
            ErrorCategory::Search => "search",
            ErrorCategory::Io => "io",
            ErrorCategory::Internal => "internal",
        }
    }

    /// The process exit code `tybec` uses for a failure in this
    /// category. Distinct per category; 1 stays reserved for usage
    /// errors and lint policy failures.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorCategory::Lex => 2,
            ErrorCategory::Parse => 2,
            ErrorCategory::Validate => 3,
            ErrorCategory::Config => 4,
            ErrorCategory::Estimate => 5,
            ErrorCategory::Sim => 6,
            ErrorCategory::Search => 7,
            ErrorCategory::Io => 8,
            ErrorCategory::Internal => 10,
        }
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The pipeline-wide structured error: category + optional span +
/// message + optional chained cause.
///
/// Constructed directly by estimator/simulator/search code, or via
/// `From<IrError>` (which preserves parse positions as spans), so any
/// `fn() -> Result<_, TybecError>` can `?` on IR-layer results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TybecError {
    /// Which pipeline stage failed.
    pub category: ErrorCategory,
    /// Source position, when the failure traces back to a `.tirl` line.
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
    /// The upstream error this one wraps, if any.
    pub cause: Option<Box<TybecError>>,
}

impl TybecError {
    /// A new error in `category` with no span or cause.
    pub fn new(category: ErrorCategory, message: impl Into<String>) -> TybecError {
        TybecError { category, span: None, message: message.into(), cause: None }
    }

    /// Shorthand constructors for the common categories.
    pub fn estimate(message: impl Into<String>) -> TybecError {
        TybecError::new(ErrorCategory::Estimate, message)
    }

    /// A simulator-stage error.
    pub fn sim(message: impl Into<String>) -> TybecError {
        TybecError::new(ErrorCategory::Sim, message)
    }

    /// A search-stage error.
    pub fn search(message: impl Into<String>) -> TybecError {
        TybecError::new(ErrorCategory::Search, message)
    }

    /// An internal-invariant violation (caught panic, impossible state).
    pub fn internal(message: impl Into<String>) -> TybecError {
        TybecError::new(ErrorCategory::Internal, message)
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> TybecError {
        self.span = Some(span);
        self
    }

    /// Chain an upstream cause (keeps the receiver's category and span).
    pub fn caused_by(mut self, cause: TybecError) -> TybecError {
        self.cause = Some(Box::new(cause));
        self
    }

    /// The error chain, outermost first.
    pub fn chain(&self) -> impl Iterator<Item = &TybecError> {
        std::iter::successors(Some(self), |e| e.cause.as_deref())
    }

    /// The innermost error in the chain (the root cause).
    pub fn root_cause(&self) -> &TybecError {
        self.chain().last().expect("chain is never empty")
    }
}

impl fmt::Display for TybecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error", self.category)?;
        if let Some(s) = self.span {
            write!(f, " at {s}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(cause) = &self.cause {
            write!(f, " (caused by: {cause})")?;
        }
        Ok(())
    }
}

impl std::error::Error for TybecError {}

impl From<IrError> for TybecError {
    fn from(e: IrError) -> TybecError {
        match e {
            IrError::Lex { line, col, msg } => {
                TybecError::new(ErrorCategory::Lex, msg).with_span(Span { line, col })
            }
            IrError::Parse { line, col, msg } => {
                TybecError::new(ErrorCategory::Parse, msg).with_span(Span { line, col })
            }
            IrError::Validate(msg) => TybecError::new(ErrorCategory::Validate, msg),
            IrError::Unknown { kind, name } => {
                TybecError::new(ErrorCategory::Config, format!("unknown {kind}: `{name}`"))
            }
            IrError::UnsupportedConfig(msg) => TybecError::new(ErrorCategory::Config, msg),
        }
    }
}

impl From<std::io::Error> for TybecError {
    fn from(e: std::io::Error) -> TybecError {
        TybecError::new(ErrorCategory::Io, e.to_string())
    }
}

/// Result alias for pipeline stages downstream of the IR.
pub type TybecResult<T> = std::result::Result<T, TybecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = IrError::Lex { line: 3, col: 7, msg: "bad char `$`".into() };
        assert_eq!(e.to_string(), "lexical error at 3:7: bad char `$`");
        let e = IrError::Parse { line: 1, col: 1, msg: "expected `define`".into() };
        assert!(e.to_string().contains("expected `define`"));
        let e = IrError::Unknown { kind: "function", name: "f9".into() };
        assert_eq!(e.to_string(), "unknown function: `f9`");
        let e = IrError::Validate("dup".into());
        assert!(e.to_string().starts_with("validation error"));
        let e = IrError::UnsupportedConfig("par inside par".into());
        assert!(e.to_string().contains("par inside par"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = IrError::Validate("x".into());
        let b = IrError::Validate("x".into());
        assert_eq!(a, b);
    }

    #[test]
    fn tybec_error_preserves_parse_spans() {
        let e: TybecError = IrError::Parse { line: 4, col: 9, msg: "bad".into() }.into();
        assert_eq!(e.category, ErrorCategory::Parse);
        assert_eq!(e.span, Some(Span { line: 4, col: 9 }));
        assert_eq!(e.to_string(), "parse error at 4:9: bad");
    }

    #[test]
    fn tybec_error_chains_and_roots() {
        let root: TybecError = IrError::Validate("no main".into()).into();
        let outer = TybecError::estimate("cannot cost an invalid module").caused_by(root.clone());
        assert_eq!(outer.chain().count(), 2);
        assert_eq!(outer.root_cause(), &root);
        assert!(outer.to_string().contains("caused by: validate error: no main"));
    }

    #[test]
    fn exit_codes_are_distinct_per_category() {
        use ErrorCategory::*;
        // Lex and Parse intentionally share a code (both are "the input
        // did not parse"); everything else is distinct and nonzero.
        let cats = [Parse, Validate, Config, Estimate, Sim, Search, Io, Internal];
        let codes: Vec<u8> = cats.iter().map(|c| c.exit_code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "{codes:?}");
        assert!(codes.iter().all(|&c| c > 1), "codes 0/1 are reserved: {codes:?}");
        assert_eq!(Lex.exit_code(), Parse.exit_code());
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "ghost.tirl");
        let e: TybecError = io.into();
        assert_eq!(e.category, ErrorCategory::Io);
        assert!(e.to_string().contains("ghost.tirl"));
    }
}
