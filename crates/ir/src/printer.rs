//! Canonical textual form of TyTra-IR (`.tirl`).
//!
//! [`print()`][fn@print] emits the format of the paper's listings (Figs 12 and 14),
//! extended with explicit Manage-IR and metadata sections so a module
//! round-trips: `parse(print(m)) == m` (covered by property tests in the
//! parser module).

use crate::function::{IrFunction, PortDir, Stmt};
use crate::module::IrModule;
use std::fmt::Write;

/// Render a module in canonical `.tirl` form.
pub fn print(m: &IrModule) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; TyTra-IR design variant");
    let _ = writeln!(s, "!module = !\"{}\"", m.name);

    // Metadata.
    if !m.meta.ndrange.is_empty() {
        let dims: Vec<String> = m.meta.ndrange.iter().map(u64::to_string).collect();
        let _ = writeln!(s, "!ndrange = !{{{}}}", dims.join(", "));
    }
    let _ = writeln!(s, "!nki = !{}", m.meta.nki);
    let _ = writeln!(s, "!form = !\"{}\"", m.meta.form);
    if let Some(f) = m.meta.freq_mhz {
        let _ = writeln!(s, "!freq = !{f}");
    }
    if m.meta.vect != 1 {
        let _ = writeln!(s, "!vect = !{}", m.meta.vect);
    }

    if !m.mems.is_empty() || !m.streams.is_empty() {
        let _ = writeln!(s, "\n; **** MANAGE-IR ****");
        for mem in &m.mems {
            let _ = writeln!(s, "{mem}");
        }
        for st in &m.streams {
            let _ = writeln!(s, "{st}");
        }
    }

    let _ = writeln!(s, "\n; **** COMPUTE-IR ****");
    for p in &m.ports {
        let _ = writeln!(s, "{p}");
    }
    for f in &m.functions {
        let _ = write!(s, "\n{}", print_function(f));
    }
    s
}

fn print_function(f: &IrFunction) -> String {
    let mut s = String::new();
    let _ = write!(s, "define void @{}(", f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            let _ = write!(s, ", ");
        }
        if p.dir == PortDir::Out {
            let _ = write!(s, "out ");
        }
        let _ = write!(s, "{} %{}", p.ty, p.name);
    }
    let _ = write!(s, ")");
    // `main` is a plain dispatcher and carries no parallelism keyword, as
    // in the paper's listings.
    if f.name != "main" {
        let _ = write!(s, " {}", f.kind.keyword());
    }
    let _ = writeln!(s, " {{");
    for st in &f.body {
        match st {
            Stmt::Instr(i) => {
                let _ = writeln!(s, "  {i}");
            }
            Stmt::Offset(o) => {
                let _ = writeln!(s, "  {o}");
            }
            Stmt::Call(c) => {
                let _ = writeln!(s, "  {c}");
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render a single function (used by diagnostics and codegen comments).
pub fn print_one_function(f: &IrFunction) -> String {
    print_function(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Opcode;
    use crate::module::MemForm;
    use crate::types::ScalarType;

    const T: ScalarType = ScalarType::UInt(18);

    fn sample() -> IrModule {
        let mut b = ModuleBuilder::new("sor_c2");
        b.global_input("p", T, 27000);
        b.global_output("pnew", T, 27000);
        {
            let f = b.function("f0", crate::ParKind::Pipe);
            f.input("p", T);
            f.output("pnew", T);
            let a = f.offset("p", T, 1);
            let bnd = f.offset("p", T, -150);
            let x = f.instr(Opcode::Add, T, vec![a, bnd]);
            f.reduce("sorErrAcc", Opcode::Add, T, x.clone());
            f.write_out("pnew", x);
        }
        b.main_calls("f0");
        b.ndrange(&[30, 30, 30]).nki(1000).form(MemForm::B);
        b.finish().expect("valid sample")
    }

    #[test]
    fn print_contains_all_sections() {
        let text = print(&sample());
        assert!(text.contains("!module = !\"sor_c2\""));
        assert!(text.contains("!ndrange = !{30, 30, 30}"));
        assert!(text.contains("!nki = !1000"));
        assert!(text.contains("!form = !\"B\""));
        assert!(text.contains("; **** MANAGE-IR ****"));
        assert!(text.contains("%mem_p = memobj addrSpace(1) ui18, !size, !27000"));
        assert!(text.contains("%strobj_p = streamobj %mem_p, !read, !\"CONT\""));
        assert!(text.contains("; **** COMPUTE-IR ****"));
        assert!(text
            .contains("@main.p = addrSpace(12) ui18, !\"istream\", !\"CONT\", !0, !\"strobj_p\""));
        assert!(text.contains("define void @f0(ui18 %p, out ui18 %pnew) pipe {"));
        assert!(text.contains("ui18 %p_p1 = ui18 %p, !offset, !+1"));
        assert!(text.contains("ui18 @sorErrAcc = add ui18 %t1, @sorErrAcc"));
        assert!(text.contains("define void @main() {"));
        assert!(text.contains("call @f0(%p, %pnew) pipe"));
    }

    #[test]
    fn main_has_no_kind_keyword() {
        let text = print(&sample());
        assert!(!text.contains("@main() seq"));
    }

    #[test]
    fn freq_hint_printed_when_set() {
        let mut m = sample();
        m.meta.freq_mhz = Some(220.0);
        assert!(print(&m).contains("!freq = !220"));
    }
}
