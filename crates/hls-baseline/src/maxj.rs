//! The conventional-HLS flow (`fpga-maxJ` in §VII).
//!
//! A Maxeler-style compiler extracts pipeline parallelism automatically
//! from the kernel body but performs **no architectural exploration**:
//! one kernel pipeline, scalar lanes, and the straightforward port keeps
//! the host in the loop — every kernel call streams its arrays over
//! PCIe (memory-execution Form A). That assignment is the only one
//! consistent with the published Fig 17 crossovers (see DESIGN.md §6).

use tytra_ir::{IrError, IrModule, MemForm};
use tytra_kernels::EvalKernel;
use tytra_transform::{InnerKind, Variant};

/// The variant a conventional HLS flow produces.
pub fn maxj_variant() -> Variant {
    Variant { lanes: 1, vect: 1, inner: InnerKind::Pipe, form: MemForm::A }
}

/// The conventional flow's default kernel build clock, MHz (MaxCompiler
/// builds DFE kernels at a fixed stream clock unless the user tunes it;
/// 150 MHz is the stock setting the straightforward port keeps).
pub const MAXJ_DEFAULT_CLOCK_MHZ: f64 = 150.0;

/// Compile `kernel` the conventional-HLS way.
pub fn maxj_flow(kernel: &dyn EvalKernel) -> Result<IrModule, IrError> {
    let mut m = kernel.lower_variant(&maxj_variant())?;
    m.name = format!("{}_maxj", kernel.name());
    m.meta.freq_mhz = Some(MAXJ_DEFAULT_CLOCK_MHZ);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_cost::estimate;
    use tytra_device::stratix_v_gsd8;
    use tytra_kernels::Sor;

    #[test]
    fn maxj_is_single_lane_form_a() {
        let sor = Sor::cubic(48, 1000);
        let m = maxj_flow(&sor).unwrap();
        assert_eq!(m.kernel_lanes(), 1);
        assert_eq!(m.meta.form, MemForm::A);
        assert!(m.name.ends_with("_maxj"));
    }

    #[test]
    fn tytra_exploration_beats_maxj() {
        // The §VII headline: the cost-model-guided variant outperforms
        // the straightforward HLS port.
        let sor = Sor::cubic(96, 1000);
        let dev = stratix_v_gsd8();
        let maxj = estimate(&maxj_flow(&sor).unwrap(), &dev).unwrap();
        let tytra_variant = Variant { lanes: 4, form: MemForm::B, ..maxj_variant() };
        let tytra = estimate(&sor.lower_variant(&tytra_variant).unwrap(), &dev).unwrap();
        assert!(
            tytra.throughput.ekit > 1.5 * maxj.throughput.ekit,
            "tytra {} vs maxj {}",
            tytra.throughput.ekit,
            maxj.throughput.ekit
        );
    }
}
