//! The CPU-only baseline: the paper's Fortran LES code compiled with
//! `gcc -O2` on an Intel i7 quad-core at 1.6 GHz (§VII, single-threaded
//! kernel loop).
//!
//! Runtime model: `items × ops / (IPC × f)` with a cache-capacity
//! derating once the working set spills the last-level cache — the
//! effect that makes "FPGA solutions tend to perform much better than
//! CPU at large dimensions". Energy: a constant load delta on the node
//! power meter. The model can be cross-checked against a real timed run
//! of the reference implementation ([`CpuModel::time_reference`]).

use std::collections::HashMap;
use tytra_kernels::EvalKernel;

/// Calibrated CPU baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Core clock, GHz.
    pub freq_ghz: f64,
    /// Sustained integer ops per cycle of the scalar kernel loop.
    pub ipc: f64,
    /// Last-level cache capacity, bytes.
    pub llc_bytes: u64,
    /// Slowdown factor once the working set spills the LLC.
    pub spill_factor: f64,
    /// Watts above idle while the kernel loop runs.
    pub load_delta_w: f64,
}

impl Default for CpuModel {
    fn default() -> CpuModel {
        CpuModel {
            freq_ghz: 1.6,
            ipc: 3.0,
            llc_bytes: 8 << 20,
            spill_factor: 1.35,
            load_delta_w: 34.0,
        }
    }
}

impl CpuModel {
    /// Modelled runtime for `nki` kernel instances of `kernel`, seconds.
    pub fn runtime_s(&self, kernel: &dyn EvalKernel, nki: u64) -> f64 {
        let items = kernel.geometry().size() as f64;
        let ops = kernel.cpu_ops_per_item() as f64;
        let working_set = self.working_set_bytes(kernel) as f64;
        let cache = if working_set > self.llc_bytes as f64 { self.spill_factor } else { 1.0 };
        items * ops / (self.ipc * self.freq_ghz * 1e9) * cache * nki as f64
    }

    /// Modelled energy above idle for the run, joules.
    pub fn energy_j(&self, kernel: &dyn EvalKernel, nki: u64) -> f64 {
        self.runtime_s(kernel, nki) * self.load_delta_w
    }

    /// Bytes the kernel touches per instance (inputs + outputs, 4 B
    /// elements in the CPU build).
    pub fn working_set_bytes(&self, kernel: &dyn EvalKernel) -> u64 {
        let def = kernel.kernel_def();
        let arrays = def.inputs.len() + def.outputs.len();
        kernel.geometry().size() * arrays as u64 * 4
    }

    /// Actually run the reference implementation once and time it —
    /// the optional real-hardware cross-check of the analytic model
    /// (wall-clock depends on the build profile and machine; only the
    /// *relative* figures are meaningful).
    pub fn time_reference(
        &self,
        kernel: &dyn EvalKernel,
    ) -> (std::time::Duration, HashMap<String, Vec<f64>>) {
        let inputs = kernel.workload();
        let t0 = std::time::Instant::now();
        let (outs, _reds) = kernel.reference(&inputs);
        (t0.elapsed(), outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_kernels::Sor;

    #[test]
    fn runtime_scales_with_grid_and_nki() {
        let cpu = CpuModel::default();
        let small = cpu.runtime_s(&Sor::cubic(24, 1000), 1000);
        let large = cpu.runtime_s(&Sor::cubic(96, 1000), 1000);
        assert!(large > 50.0 * small, "{small} vs {large}");
        let one = cpu.runtime_s(&Sor::cubic(24, 1), 1);
        assert!((small / one - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn cache_spill_derates_large_grids() {
        let cpu = CpuModel::default();
        // 24³ × 3 arrays × 4 B = 166 KB (fits); 192³ × 12 B = 85 MB
        // (spills).
        let fits = cpu.working_set_bytes(&Sor::cubic(24, 1)) < cpu.llc_bytes;
        let spills = cpu.working_set_bytes(&Sor::cubic(192, 1)) > cpu.llc_bytes;
        assert!(fits && spills);
        let per_item_small = cpu.runtime_s(&Sor::cubic(24, 1), 1) / 24f64.powi(3);
        let per_item_large = cpu.runtime_s(&Sor::cubic(192, 1), 1) / 192f64.powi(3);
        assert!((per_item_large / per_item_small - cpu.spill_factor).abs() < 1e-9);
    }

    #[test]
    fn per_item_time_is_nanoseconds_scale() {
        let cpu = CpuModel::default();
        let sor = Sor::cubic(96, 1);
        let per_item = cpu.runtime_s(&sor, 1) / 96f64.powi(3);
        // ~20 ops at ~3.5 Gops/s ≈ 6 ns, cache-derated.
        assert!(per_item > 2e-9 && per_item < 30e-9, "{per_item}");
    }

    #[test]
    fn energy_is_power_times_time() {
        let cpu = CpuModel::default();
        let sor = Sor::cubic(48, 10);
        let e = cpu.energy_j(&sor, 10);
        let t = cpu.runtime_s(&sor, 10);
        assert!((e - t * cpu.load_delta_w).abs() < 1e-12);
    }

    #[test]
    fn timed_reference_produces_outputs() {
        let cpu = CpuModel::default();
        let sor = Sor::cubic(12, 1);
        let (dt, outs) = cpu.time_reference(&sor);
        assert!(dt.as_nanos() > 0);
        assert_eq!(outs["pnew"].len(), 12 * 12 * 12);
    }
}
