//! The §VII case study: CPU vs conventional HLS (`fpga-maxJ`) vs the
//! cost-model-guided TyTra variant (`fpga-tytra`), across grid sizes —
//! the data behind Figs 17 (runtime) and 18 (delta energy).

use crate::cpu::CpuModel;
use crate::maxj::{maxj_flow, maxj_variant};
use tytra_device::TargetDevice;
use tytra_ir::{MemForm, TybecError};
use tytra_kernels::{EvalKernel, Sor};
use tytra_sim::run_application;
use tytra_transform::Variant;

/// One grid-size point of the Figs 17/18 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyPoint {
    /// Grid side (im = jm = km).
    pub side: u64,
    /// CPU-only runtime, seconds.
    pub cpu_s: f64,
    /// fpga-maxJ runtime, seconds.
    pub maxj_s: f64,
    /// fpga-tytra runtime, seconds.
    pub tytra_s: f64,
    /// CPU delta energy, joules.
    pub cpu_j: f64,
    /// fpga-maxJ delta energy, joules.
    pub maxj_j: f64,
    /// fpga-tytra delta energy, joules.
    pub tytra_j: f64,
}

impl CaseStudyPoint {
    /// Runtime normalised to the CPU (the Fig 17 y-axis): `(cpu, maxj,
    /// tytra)` with cpu ≡ 1.
    pub fn runtime_normalized(&self) -> (f64, f64, f64) {
        (1.0, self.maxj_s / self.cpu_s, self.tytra_s / self.cpu_s)
    }

    /// Energy normalised to the CPU (the Fig 18 y-axis).
    pub fn energy_normalized(&self) -> (f64, f64, f64) {
        (1.0, self.maxj_j / self.cpu_j, self.tytra_j / self.cpu_j)
    }
}

/// The TyTra design variant the back-end compiler selected in §VII:
/// thread parallelism (4 lanes) on top of pipeline parallelism, data
/// staged in device DRAM.
pub fn tytra_variant() -> Variant {
    Variant { lanes: 4, form: MemForm::B, ..maxj_variant() }
}

/// Run the case study over the given grid sides with `nki` kernel
/// iterations (the paper fixes nmaxp = 1000).
pub fn case_study(
    sides: &[u64],
    nki: u64,
    dev: &TargetDevice,
) -> Result<Vec<CaseStudyPoint>, TybecError> {
    let cpu = CpuModel::default();
    let mut out = Vec::with_capacity(sides.len());
    for &side in sides {
        let sor = Sor::cubic(side, nki);

        let cpu_s = cpu.runtime_s(&sor, nki);
        let cpu_j = cpu.energy_j(&sor, nki);

        let maxj_module = maxj_flow(&sor)?;
        let maxj = run_application(&maxj_module, dev)?;

        // The TyTra-generated HDL is hosted inside the Maxeler framework
        // (paper Fig 16), so it runs at the same stream clock as the
        // MaxJ build; its advantage is architectural (lanes + Form B),
        // not frequency.
        let mut tytra_module = sor.lower_variant(&tytra_variant())?;
        tytra_module.meta.freq_mhz = Some(crate::maxj::MAXJ_DEFAULT_CLOCK_MHZ);
        let tytra = run_application(&tytra_module, dev)?;

        out.push(CaseStudyPoint {
            side,
            cpu_s,
            maxj_s: maxj.t_total_s,
            tytra_s: tytra.t_total_s,
            cpu_j,
            maxj_j: maxj.power.delta_energy_j,
            tytra_j: tytra.power.delta_energy_j,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;

    fn sweep() -> Vec<CaseStudyPoint> {
        // The paper's sides at a reduced nki for test speed (the paper
        // itself notes results "hold across different values of nmaxp").
        case_study(&[24, 48, 96, 144, 192], 100, &stratix_v_gsd8()).unwrap()
    }

    #[test]
    fn fig17_shape_tytra_wins_at_large_grids() {
        let points = sweep();
        for p in points.iter().filter(|p| p.side >= 96) {
            let (_, maxj, tytra) = p.runtime_normalized();
            assert!(tytra < 1.0, "side {}: tytra {tytra} ≥ cpu", p.side);
            assert!(tytra < maxj, "side {}: tytra {tytra} vs maxj {maxj}", p.side);
        }
        // Up to ~4× over maxJ (the paper reports 3.9×).
        let best = points.iter().map(|p| p.maxj_s / p.tytra_s).fold(0.0f64, f64::max);
        assert!(best > 2.0 && best < 8.0, "best tytra-vs-maxj {best}");
    }

    #[test]
    fn fig17_shape_maxj_loses_to_cpu_at_typical_grids() {
        let points = sweep();
        let p96 = points.iter().find(|p| p.side == 96).unwrap();
        let (_, maxj, tytra) = p96.runtime_normalized();
        assert!(maxj > 1.0, "maxJ should be slower than CPU at ~100³: {maxj}");
        assert!(tytra < 1.0, "tytra should beat CPU at ~100³: {tytra}");
    }

    #[test]
    fn fig17_shape_small_grid_reversal() {
        let points = sweep();
        let p24 = points.iter().find(|p| p.side == 24).unwrap();
        let p96 = points.iter().find(|p| p.side == 96).unwrap();
        let (_, _, t24) = p24.runtime_normalized();
        let (_, _, t96) = p96.runtime_normalized();
        // The per-stream overheads of the 4-lane variant bite at 24³:
        // relatively less improvement (or a loss) versus larger grids.
        assert!(t24 > t96, "24³ {t24} should be relatively worse than 96³ {t96}");
    }

    #[test]
    fn fig18_shape_fpga_wins_energy_at_scale() {
        let points = sweep();
        let p192 = points.iter().find(|p| p.side == 192).unwrap();
        let (_, maxj_e, tytra_e) = p192.energy_normalized();
        assert!(tytra_e < 0.5, "tytra energy {tytra_e} vs cpu");
        assert!(tytra_e < maxj_e, "tytra {tytra_e} vs maxj {maxj_e}");
        // Paper: up to 11× power-efficiency over CPU, 2.9× over maxJ.
        let cpu_gain = 1.0 / tytra_e;
        assert!(cpu_gain > 2.0 && cpu_gain < 40.0, "{cpu_gain}");
    }

    #[test]
    fn points_cover_requested_sides() {
        let points = sweep();
        let sides: Vec<u64> = points.iter().map(|p| p.side).collect();
        assert_eq!(sides, vec![24, 48, 96, 144, 192]);
    }
}
