//! # tytra-hls-baseline — the comparators of the paper's evaluation
//!
//! Three baselines the TyTra flow is measured against in §VI–VII:
//!
//! * [`cpu`] — the CPU-only solution (the paper's Fortran LES code,
//!   `gcc -O2`, Intel i7 quad-core at 1.6 GHz): a calibrated analytic
//!   timing/energy model plus an optional real timed run of the
//!   reference implementation;
//! * [`maxj`] — the conventional-HLS solution (`fpga-maxJ`): pipeline
//!   parallelism extracted automatically, no architectural exploration,
//!   host-streamed execution (Form A) — the straightforward port the
//!   paper shows "may not fully exploit the parallelism and performance
//!   achievable on an FPGA device";
//! * [`slow_estimator`] — the SDAccel-style *preliminary estimate* the
//!   paper times at ≈70 s against the cost model's 0.3 s (§VI-A): a
//!   deliberately detailed evaluation that elaborates the full netlist,
//!   prices it at several synthesis corners and walks the kernel
//!   instance at fine grain;
//! * [`case_study()`][case_study::case_study] — the §VII three-way comparison (Figs 17, 18).

pub mod case_study;
pub mod cpu;
pub mod maxj;
pub mod slow_estimator;

pub use case_study::{case_study, CaseStudyPoint};
pub use cpu::CpuModel;
pub use maxj::maxj_flow;
pub use slow_estimator::{slow_estimate, SlowEstimate};
