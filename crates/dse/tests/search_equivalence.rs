//! The branch-and-bound contract, property-tested: for *any* device the
//! strategy can build and *any* worker count, the pruned search must
//! return exactly the outcome of the exhaustive search — same ranked
//! leaderboard (bit-equal EKITs, same order), same infeasible set.
//!
//! The device strategy scales `eval_small` along the axes the bound
//! actually reads — resource capacities (moves the fit frontier through
//! the lane sweep), Fmax (the compute-floor ceiling), link peaks (the
//! memory wall) and the host-call overhead — so pruning decisions shift
//! case to case while the admissibility argument (docs/dse-search.md)
//! must keep holding. Worker counts cover the serial path, the smallest
//! stealing configuration, and whatever this machine's parallelism is.

use proptest::prelude::*;
use tytra_device::{eval_small, TargetDevice};
use tytra_dse::{search, ExplorationConfig, SearchConfig, SearchOutcome};
use tytra_ir::MemForm;
use tytra_kernels::Sor;

/// The lane sweep deliberately includes counts that only fit the larger
/// sampled devices, so `pruned_unfit` and `pruned_bound` both exercise.
fn space(workers: usize) -> ExplorationConfig {
    ExplorationConfig {
        lanes: vec![1, 2, 4, 8, 16, 32],
        vects: vec![1, 2],
        forms: vec![MemForm::A, MemForm::B, MemForm::C],
        include_seq: false,
        workers,
    }
}

/// `eval_small`, rescaled. Every factor stays positive, so the derived
/// device is physically sensible and the bound's monotonicity argument
/// applies unchanged.
fn scaled_device(cap: f64, fmax: f64, link: f64, overhead: f64) -> TargetDevice {
    let mut dev = eval_small();
    dev.name = format!("prop-c{cap:.2}-f{fmax:.0}-l{link:.2}-o{overhead:.0}");
    dev.capacity.aluts = ((dev.capacity.aluts as f64) * cap) as u64;
    dev.capacity.regs = ((dev.capacity.regs as f64) * cap) as u64;
    dev.capacity.bram_bits = ((dev.capacity.bram_bits as f64) * cap) as u64;
    dev.capacity.dsps = ((dev.capacity.dsps as f64) * cap) as u64;
    dev.fmax_mhz = fmax;
    dev.host_link.peak_bytes_per_s *= link;
    dev.dram_link.peak_bytes_per_s *= link;
    dev.host_call_overhead_us = overhead;
    dev
}

fn fingerprint(o: &SearchOutcome) -> (Vec<(String, u64)>, Vec<String>) {
    (
        o.leaderboard
            .iter()
            .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
            .collect(),
        o.invalid.iter().map(|iv| iv.variant.tag()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pruned ≡ exhaustive for random devices and worker counts.
    #[test]
    fn pruned_search_is_bit_identical_to_exhaustive(
        cap in 0.25f64..6.0,
        fmax in 60.0f64..400.0,
        link in 0.2f64..3.0,
        overhead in 1.0f64..200.0,
        w_ix in 0usize..3,
    ) {
        let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let workers = [1usize, 2, ncpu][w_ix];
        let dev = scaled_device(cap, fmax, link, overhead);
        let sor = Sor::cubic(16, 10);

        let pruned = search(&sor, &dev, &SearchConfig::pruned(space(workers)));
        let exhaustive = search(&sor, &dev, &SearchConfig::exhaustive(space(workers)));

        // Exhaustive mode never skips an estimate; pruned mode never
        // changes the answer.
        prop_assert_eq!(exhaustive.stats.estimated, exhaustive.stats.generated);
        prop_assert_eq!(exhaustive.stats.pruned(), 0);
        prop_assert_eq!(pruned.stats.generated, exhaustive.stats.generated);
        prop_assert_eq!(fingerprint(&pruned), fingerprint(&exhaustive));
    }

    /// The leaderboard is also invariant in the worker count within a
    /// mode, for random devices (steal interleavings must not leak into
    /// the ranking).
    #[test]
    fn pruned_search_is_worker_count_invariant(
        cap in 0.25f64..6.0,
        fmax in 60.0f64..400.0,
    ) {
        let dev = scaled_device(cap, fmax, 1.0, 60.0);
        let sor = Sor::cubic(16, 10);
        let serial = fingerprint(&search(&sor, &dev, &SearchConfig::pruned(space(1))));
        let threaded = fingerprint(&search(&sor, &dev, &SearchConfig::pruned(space(4))));
        prop_assert_eq!(serial, threaded);
    }
}
