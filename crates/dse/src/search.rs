//! Branch-and-bound design-space search with work stealing.
//!
//! [`explore()`][crate::explore::explore] materialises the whole variant
//! cross-product and pays the full 8-pass estimate for every point.
//! [`search()`] replaces that with the Fig-15 insight the paper builds
//! towards: the wall terms of Eqs 1–3 (bandwidth, overheads, the
//! clock-ceiling compute floor) plus the exact memoized resource sums
//! are enough to *prove* most variants out of contention before any
//! schedule or clock pass runs. The engine:
//!
//! * generates variants lazily ([`VariantIter`]) and deals them out in
//!   chunks to per-worker deques, with idle workers stealing from
//!   victims' queues (`crossbeam::deque`), so cheap (pruned) and
//!   expensive (estimated) variants balance dynamically;
//! * materialises each variant as a copy-on-write patch over a shared
//!   arena base ([`VariantFactory`] — one lowering per structural
//!   class), and costs it through the estimator's zero-alloc
//!   `bound_design`/`estimate_design` passes instead of cloning a tree
//!   module per design point;
//! * keeps a global incumbent — the K-th best valid EKIT so far — as
//!   atomic `f64` bits ([`AtomicU64`]), and skips the full
//!   [`EstimatorSession::estimate`] whenever the admissible
//!   [`bound`][EstimatorSession::bound] proves a variant cannot beat it
//!   or cannot fit the device;
//! * breaks EKIT ties deterministically by generation index, so the
//!   ranked leaderboard is **bit-identical** to
//!   [`SearchMode::Exhaustive`] regardless of worker count, steal
//!   interleaving, or how many variants were pruned (the admissibility
//!   and determinism arguments are written out in `docs/dse-search.md`).
//!
//! Tracing: each bound carries a `dse.bound` span, each full estimate a
//! `dse.variant` span, each successful steal a `dse.steal` span, all on
//! `dse-worker-N` thread lanes.
//!
//! Observability: workers leave `dse.bound`/`dse.variant` breadcrumbs in
//! the always-on [flight recorder][tytra_trace::recorder] (so a crashed
//! or faulted variant ships a post-mortem trace — see
//! [`SearchOutcome::fault_dumps`]), and publish live counters, per-worker
//! `points_per_sec` gauges and bound-vs-estimate latency histograms into
//! [`SearchConfig::live`] when a shared registry is attached (the merged
//! view always lands in [`SearchOutcome::metrics`] either way).

use crossbeam::deque::{Steal, Stealer, Worker};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tytra_analyze::cost_class_key_design;
use tytra_cost::{CostReport, EstimatorSession, SessionStats};
use tytra_device::TargetDevice;
use tytra_kernels::EvalKernel;
use tytra_trace::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use tytra_trace::recorder;
use tytra_trace::{self as trace};
use tytra_transform::{IndexedVariant, Variant, VariantFactory, VariantIter};

use crate::explore::{EvaluatedVariant, ExplorationConfig};

/// Whether the search may prune on analytic bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Branch-and-bound: run the cheap bound pass first and estimate
    /// only variants that fit and could beat the incumbent.
    Pruned,
    /// The escape hatch: estimate every variant (`tybec dse
    /// --exhaustive`). Same leaderboard, byte for byte.
    Exhaustive,
}

/// Search configuration: the space to sweep plus search-specific knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The design space and worker count (as for
    /// [`explore()`][crate::explore::explore]).
    pub space: ExplorationConfig,
    /// Prune on bounds or estimate everything.
    pub mode: SearchMode,
    /// Leaderboard size: the search returns the top `top_k` valid
    /// variants (the incumbent threshold is the K-th best, so larger
    /// boards prune less).
    pub top_k: usize,
    /// Variants handed to a worker per generator refill.
    pub chunk: usize,
    /// Test/fuzz hook: a predicate selecting variants whose estimate
    /// must fault (the worker panics inside its catch region). `None` in
    /// production. A plain `fn` pointer keeps the config `Debug + Clone`.
    pub fault_inject: Option<fn(&Variant) -> bool>,
    /// Live metrics registry. When attached, workers publish their
    /// counters, latency histograms and `dse.worker.N.points_per_sec`
    /// gauges here *while the sweep runs*, so a
    /// [`Sampler`][tytra_trace::sampler::Sampler] (or a Prometheus
    /// scrape of a snapshot) can watch progress. `None` keeps the same
    /// metrics in per-worker registries merged into
    /// [`SearchOutcome::metrics`] at the end.
    pub live: Option<Arc<Registry>>,
}

impl SearchConfig {
    /// Pruned search over `space` with the default board size.
    pub fn pruned(space: ExplorationConfig) -> SearchConfig {
        SearchConfig {
            space,
            mode: SearchMode::Pruned,
            top_k: 10,
            chunk: 4,
            fault_inject: None,
            live: None,
        }
    }

    /// Exhaustive search over `space` (the `--exhaustive` escape hatch).
    pub fn exhaustive(space: ExplorationConfig) -> SearchConfig {
        SearchConfig { mode: SearchMode::Exhaustive, ..SearchConfig::pruned(space) }
    }
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig::pruned(ExplorationConfig::default())
    }
}

/// What the search did, not what it found: generation, pruning and
/// stealing counters. `generated` is deterministic; the split between
/// `estimated` and `pruned_bound` (and `stolen`) depends on thread
/// interleaving — the *outcome* never does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Legal variants drawn from the generator.
    pub generated: u64,
    /// Variants that paid the full 8-pass estimate.
    pub estimated: u64,
    /// Variants proven not to fit the device by the bound pass alone.
    pub pruned_unfit: u64,
    /// Variants whose EKIT upper bound could not beat the incumbent.
    pub pruned_bound: u64,
    /// Tasks taken from another worker's deque.
    pub stolen: u64,
    /// Variants whose bound or estimate faulted (error or caught
    /// panic). Faulted variants are skipped, never aborting the sweep;
    /// the leaderboard over the healthy variants is unaffected.
    pub faulted: u64,
    /// Distinct cost-congruence classes that paid a full estimate
    /// (pruned mode; always 0 in exhaustive mode, which estimates every
    /// variant individually).
    pub classes: u64,
    /// Variants whose report was replicated from a congruent class
    /// member instead of re-running the estimator (the prefilter tier).
    pub collapsed: u64,
}

impl SearchStats {
    /// Variants that skipped the full estimate.
    pub fn pruned(&self) -> u64 {
        self.pruned_unfit + self.pruned_bound
    }

    /// Fraction of generated variants that skipped the full estimate
    /// (0 when nothing was generated).
    pub fn pruned_fraction(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.generated as f64
        }
    }
}

impl std::ops::AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: SearchStats) {
        self.generated += rhs.generated;
        self.estimated += rhs.estimated;
        self.pruned_unfit += rhs.pruned_unfit;
        self.pruned_bound += rhs.pruned_bound;
        self.stolen += rhs.stolen;
        self.faulted += rhs.faulted;
        self.classes += rhs.classes;
        self.collapsed += rhs.collapsed;
    }
}

/// A variant proven not to fit the device. The verdict is exact in both
/// modes (the bound's resource pass is the estimator's resource pass),
/// so pruned and exhaustive searches report the same set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidVariant {
    /// Position in the legal generation order.
    pub index: u64,
    /// The variant.
    pub variant: Variant,
}

/// The search result: the ranked top-K valid variants, the infeasible
/// set, and the counters.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Top `top_k` device-fitting variants by (EKIT desc, index asc).
    /// Bit-identical between [`SearchMode::Pruned`] and
    /// [`SearchMode::Exhaustive`], for any worker count.
    pub leaderboard: Vec<EvaluatedVariant>,
    /// Variants that do not fit the device, by generation index.
    pub invalid: Vec<InvalidVariant>,
    /// Search counters (pruned / estimated / stolen).
    pub stats: SearchStats,
    /// Summed memo statistics of every worker's estimator session.
    pub session: SessionStats,
    /// Merged metrics registries of every worker session (plus the
    /// worker observability counters/histograms; when
    /// [`SearchConfig::live`] was attached, its final snapshot).
    pub metrics: Snapshot,
    /// Post-mortem flight-recorder dumps, one per faulted variant:
    /// `(variant tag, rendered dump)`. The dump is the faulting worker's
    /// lane at the moment the fault was recorded, so it ends with the
    /// variant's `dse.bound`/`dse.variant` breadcrumbs and the
    /// `dse.fault` mark itself. Sorted by variant tag.
    pub fault_dumps: Vec<(String, String)>,
}

/// The global incumbent: the K-th best valid EKIT seen so far, readable
/// without a lock as atomic `f64` bits. Monotone non-decreasing, so a
/// variant pruned against any intermediate threshold is also out against
/// the final one — the pruned leaderboard cannot depend on scheduling.
struct Incumbent {
    /// `f64::to_bits` of the current threshold (`NEG_INFINITY` until
    /// `k` valid variants have been estimated — nothing prunes before
    /// the board is full).
    threshold_bits: AtomicU64,
    /// The top-K `(ekit, index)` pairs, best first.
    board: Mutex<Vec<(f64, u64)>>,
    k: usize,
}

impl Incumbent {
    fn new(k: usize) -> Incumbent {
        Incumbent {
            threshold_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            board: Mutex::new(Vec::with_capacity(k + 1)),
            k,
        }
    }

    fn threshold(&self) -> f64 {
        f64::from_bits(self.threshold_bits.load(Ordering::Relaxed))
    }

    fn record(&self, ekit: f64, index: u64) {
        let mut board = self.board.lock().unwrap_or_else(|e| e.into_inner());
        // Board order is (ekit descending, index ascending); the probe
        // compares a board entry against the new result in that order.
        let pos = board
            .binary_search_by(|(e, i)| e.total_cmp(&ekit).reverse().then_with(|| i.cmp(&index)))
            .unwrap_or_else(|p| p);
        board.insert(pos, (ekit, index));
        board.truncate(self.k);
        if board.len() == self.k {
            if let Some(&(kth, _)) = board.last() {
                self.threshold_bits.store(kth.to_bits(), Ordering::Relaxed);
            }
        }
    }
}

/// The shared congruence-class cache: the prefilter tier ahead of the
/// bound pass. Keyed by [`tytra_analyze::cost_class_key_design`] — the
/// arena re-hash that equals `cost_class_key` on the materialized tree —
/// whose contract is that equal keys receive bit-identical cost reports (the
/// design label and, at `NKI == 1`, the A/B form aside — both patched on
/// replication), so replicating a cached report is indistinguishable
/// from re-running the estimator and the leaderboard stays bit-identical
/// to `--exhaustive` no matter which class member was estimated first.
struct ClassCache {
    map: Mutex<HashMap<u64, CostReport>>,
}

impl ClassCache {
    fn new() -> ClassCache {
        ClassCache { map: Mutex::new(HashMap::new()) }
    }

    fn lookup(&self, key: u64) -> Option<CostReport> {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).get(&key).cloned()
    }

    /// Insert the class representative; returns `true` when this call
    /// created the class (two workers racing the same class both
    /// estimate, but only one counts it).
    fn insert_if_new(&self, key: u64, report: &CostReport) -> bool {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
            slot.insert(report.clone());
            true
        } else {
            false
        }
    }
}

/// The shared lazy generator: workers refill their deques from it in
/// chunks under one short-lived lock.
struct Dispenser {
    gen: Mutex<VariantIter>,
}

impl Dispenser {
    fn refill(&self, n: usize) -> Vec<IndexedVariant> {
        let mut gen = self.gen.lock().unwrap_or_else(|e| e.into_inner());
        gen.by_ref().take(n.max(1)).collect()
    }
}

/// One worker's accumulator.
#[derive(Default)]
struct WorkerOut {
    valid: Vec<(u64, EvaluatedVariant)>,
    invalid: Vec<InvalidVariant>,
    stats: SearchStats,
    fault_dumps: Vec<(String, String)>,
}

/// One worker's live-observability handles. The counters mirror
/// [`SearchStats`] (summed across workers when the registry is shared);
/// the histograms time every bound and estimate call; the gauge is
/// per-worker by name.
struct WorkerObs {
    points: Counter,
    faulted: Counter,
    pruned_unfit: Counter,
    pruned_bound: Counter,
    collapsed: Counter,
    stolen: Counter,
    bound_ns: Histogram,
    estimate_ns: Histogram,
    points_per_sec: Gauge,
}

impl WorkerObs {
    fn new(reg: &Registry, w: usize) -> WorkerObs {
        WorkerObs {
            points: reg.counter("dse.points"),
            faulted: reg.counter("dse.faulted"),
            pruned_unfit: reg.counter("dse.pruned_unfit"),
            pruned_bound: reg.counter("dse.pruned_bound"),
            collapsed: reg.counter("dse.prefilter_collapsed"),
            stolen: reg.counter("dse.stolen"),
            bound_ns: reg.histogram("dse.bound_ns"),
            estimate_ns: reg.histogram("dse.estimate_ns"),
            points_per_sec: reg.gauge(&format!("dse.worker.{w}.points_per_sec")),
        }
    }
}

/// Human-readable description of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Record one faulted variant: counted, traced as a `dse.fault` span,
/// stamped into the flight recorder, and shipped with a post-mortem dump
/// of this worker's lane — then skipped; the sweep continues.
fn record_fault(
    out: &mut WorkerOut,
    obs: &WorkerObs,
    item: &IndexedVariant,
    worker: usize,
    why: &str,
) {
    out.stats.faulted += 1;
    obs.faulted.incr();
    recorder::mark("dse.fault", item.index);
    if trace::enabled() {
        let _sp = trace::span("dse.fault")
            .with("variant", item.variant.tag())
            .with("worker", worker as u64)
            .with("why", why.to_string());
    }
    if let Some(lane) = recorder::dump_current_thread() {
        out.fault_dumps.push((item.variant.tag(), recorder::render_dump(&[lane])));
    }
}

/// Bound (in pruned mode) and, if the variant survives, estimate one
/// design point.
///
/// Both the bound and the estimate run inside `catch_unwind`, so one
/// faulting variant (an `Err` *or* a panic deep in a pass) is skipped
/// and counted instead of tearing down the worker — and with it the
/// whole sweep. The session is treated as unwind-safe: its memo tables
/// are keyed by structural fingerprint, so the worst a mid-pass panic
/// leaves behind is an absent entry for the faulted module, never a
/// wrong one for a healthy module.
#[allow(clippy::too_many_arguments)]
fn process_item(
    factory: &VariantFactory,
    item: IndexedVariant,
    cfg: &SearchConfig,
    incumbent: &Incumbent,
    classes: &ClassCache,
    session: &mut EstimatorSession,
    out: &mut WorkerOut,
    obs: &WorkerObs,
    worker: usize,
) {
    obs.points.incr();
    // The factory serves the variant as a three-cell patch over a shared
    // arena base (lowered once per structural class). Erroring is only
    // possible for illegal reshapes, which the generator already
    // filtered.
    let Ok(design) = factory.design(&item.variant) else { return };
    let d = design.patched();

    // Congruence prefilter: the cheapest tier, ahead even of the bound
    // pass. Pruned mode only — `--exhaustive` estimates every variant
    // individually, which is exactly what makes it the oracle the
    // prefiltered leaderboard is checked against. Fault injection
    // disables the tier: an injected fault must fire on its selected
    // variant, not be absorbed by a congruent sibling's cached report.
    let class_key = if cfg.mode == SearchMode::Pruned && cfg.fault_inject.is_none() {
        let key = cost_class_key_design(&d);
        if let Some(mut report) = classes.lookup(key) {
            if trace::enabled() {
                let _sp = trace::span("dse.prefilter")
                    .with("variant", item.variant.tag())
                    .with("worker", worker as u64);
            }
            out.stats.collapsed += 1;
            obs.collapsed.incr();
            // The only two facts the class key erases, patched back in.
            report.design = design.name().to_string();
            report.params.form = design.form();
            if report.fits {
                incumbent.record(report.throughput.ekit, item.index);
                out.valid.push((
                    item.index,
                    EvaluatedVariant { variant: item.variant, report, reconfig: None },
                ));
            } else {
                out.invalid.push(InvalidVariant { index: item.index, variant: item.variant });
            }
            return;
        }
        Some(key)
    } else {
        None
    };

    if cfg.mode == SearchMode::Pruned {
        recorder::mark("dse.bound", item.index);
        let b0 = Instant::now();
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            let _sp = trace::enabled().then(|| {
                trace::span("dse.bound")
                    .with("variant", item.variant.tag())
                    .with("worker", worker as u64)
            });
            session.bound_design(&d)
        }));
        obs.bound_ns.record(b0.elapsed().as_nanos() as u64);
        let bound = match verdict {
            Ok(Ok(bound)) => bound,
            Ok(Err(e)) => {
                record_fault(out, obs, &item, worker, &e.to_string());
                return;
            }
            Err(payload) => {
                record_fault(out, obs, &item, worker, &panic_message(payload.as_ref()));
                return;
            }
        };
        if !bound.fits {
            out.stats.pruned_unfit += 1;
            obs.pruned_unfit.incr();
            out.invalid.push(InvalidVariant { index: item.index, variant: item.variant });
            return;
        }
        if !bound.can_beat(incumbent.threshold()) {
            out.stats.pruned_bound += 1;
            obs.pruned_bound.incr();
            return;
        }
    }

    recorder::mark("dse.variant", item.index);
    let e0 = Instant::now();
    let estimated = catch_unwind(AssertUnwindSafe(|| {
        let _sp = trace::enabled().then(|| {
            trace::span("dse.variant")
                .with("variant", item.variant.tag())
                .with("worker", worker as u64)
        });
        if let Some(faulty) = cfg.fault_inject {
            if faulty(&item.variant) {
                panic!("injected estimator fault on {}", item.variant.tag());
            }
        }
        session.estimate_design(&d)
    }));
    obs.estimate_ns.record(e0.elapsed().as_nanos() as u64);
    let report = match estimated {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => {
            record_fault(out, obs, &item, worker, &e.to_string());
            return;
        }
        Err(payload) => {
            record_fault(out, obs, &item, worker, &panic_message(payload.as_ref()));
            return;
        }
    };
    out.stats.estimated += 1;
    if let Some(key) = class_key {
        if classes.insert_if_new(key, &report) {
            out.stats.classes += 1;
        }
    }
    if report.fits {
        incumbent.record(report.throughput.ekit, item.index);
        out.valid
            .push((item.index, EvaluatedVariant { variant: item.variant, report, reconfig: None }));
    } else {
        // Exhaustive mode discovers infeasibility the expensive way; the
        // verdict is the same fits_within the bound pass evaluates.
        out.invalid.push(InvalidVariant { index: item.index, variant: item.variant });
    }
}

/// One worker's run loop: drain the own deque, refill from the
/// generator, then steal; exit when all three come up empty.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    factory: &VariantFactory,
    dev: &TargetDevice,
    cfg: &SearchConfig,
    dispenser: &Dispenser,
    incumbent: &Incumbent,
    classes: &ClassCache,
    queue: &Worker<IndexedVariant>,
    stealers: &[Stealer<IndexedVariant>],
    w: usize,
) -> (WorkerOut, SessionStats, Snapshot) {
    if trace::enabled() {
        trace::set_thread_label(&format!("dse-worker-{w}"));
    }
    let obs_reg: Arc<Registry> = cfg.live.clone().unwrap_or_default();
    let obs = WorkerObs::new(&obs_reg, w);
    let t0 = Instant::now();
    let mut processed = 0u64;
    let rate = |n: u64| n as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let mut session = EstimatorSession::new(dev.clone());
    let mut out = WorkerOut::default();
    loop {
        if let Some(item) = queue.pop() {
            process_item(factory, item, cfg, incumbent, classes, &mut session, &mut out, &obs, w);
            processed += 1;
            continue;
        }
        // Refills are the loop's natural coarse tick: refresh the live
        // throughput gauge here rather than per point.
        obs.points_per_sec.set(rate(processed));
        let chunk = dispenser.refill(cfg.chunk);
        if !chunk.is_empty() {
            out.stats.generated += chunk.len() as u64;
            let mut items = chunk.into_iter();
            let first = items.next().expect("non-empty chunk");
            for item in items {
                queue.push(item);
            }
            process_item(factory, first, cfg, incumbent, classes, &mut session, &mut out, &obs, w);
            processed += 1;
            continue;
        }
        // Generator dry: steal up to half a victim's queue (the steal
        // never takes a queue's last task — see `crossbeam::deque` —
        // so every seeded worker keeps one to run itself). Missing a
        // victim that empties concurrently is safe — every task lives
        // in exactly one deque (or one worker's hands) at a time, so
        // nothing is lost; this worker merely retires early.
        let stolen = (1..stealers.len()).find_map(|offset| {
            let v = (w + offset) % stealers.len();
            match stealers[v].steal_batch_and_pop(queue) {
                Steal::Success(item) => Some((v, item)),
                Steal::Empty | Steal::Retry => None,
            }
        });
        match stolen {
            Some((victim, item)) => {
                out.stats.stolen += 1;
                obs.stolen.incr();
                let _sp = trace::enabled().then(|| {
                    trace::span("dse.steal").with("worker", w as u64).with("victim", victim as u64)
                });
                drop(_sp);
                process_item(
                    factory,
                    item,
                    cfg,
                    incumbent,
                    classes,
                    &mut session,
                    &mut out,
                    &obs,
                    w,
                );
                processed += 1;
            }
            None => break,
        }
    }
    obs.points_per_sec.set(rate(processed));
    let mut snap = session.metrics_snapshot();
    if cfg.live.is_none() {
        // No shared registry: fold this worker's observability metrics
        // into its returned snapshot (a live registry is merged once, at
        // the end of `search()`, to avoid double counting).
        snap.merge(&obs_reg.snapshot());
    }
    (out, session.stats(), snap)
}

/// Branch-and-bound search over the design space of `kernel` on `dev`.
///
/// Returns the top-K valid variants ranked by (EKIT descending,
/// generation index ascending) and the exact set of variants that do not
/// fit the device. The leaderboard and invalid set are bit-identical
/// across [`SearchMode`]s and worker counts; only [`SearchStats`] and
/// wall-time differ.
pub fn search(kernel: &dyn EvalKernel, dev: &TargetDevice, cfg: &SearchConfig) -> SearchOutcome {
    let ngs = kernel.geometry().size();
    let sp = &cfg.space;
    let gen = VariantIter::new(ngs, &sp.lanes, &sp.vects, &sp.forms, sp.include_seq);
    let space_cap = gen.space_size();

    let requested = if sp.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        sp.workers
    };
    // The lazy space's legal size is unknown up front; clamp on the
    // cross-product cap. An empty space short-circuits to the serial
    // path, which spawns no threads at all.
    let workers = requested.clamp(1, space_cap.max(1) as usize);

    let incumbent = Incumbent::new(cfg.top_k.max(1));
    let classes = ClassCache::new();
    let dispenser = Dispenser { gen: Mutex::new(gen) };
    // One factory per sweep: workers share the lowered arena bases (the
    // first worker to touch a structural class lowers it for everyone)
    // and cost each variant as a copy-on-write patch.
    let factory = kernel.variant_factory();

    // Prove the filtered space non-empty before spawning anything: a
    // space whose every candidate is an illegal reshape short-circuits
    // to an empty outcome with no worker threads and no sessions.
    let first_chunk = dispenser.refill(cfg.chunk);
    if first_chunk.is_empty() {
        return SearchOutcome {
            leaderboard: Vec::new(),
            invalid: Vec::new(),
            stats: SearchStats::default(),
            session: SessionStats::default(),
            metrics: match &cfg.live {
                Some(live) => live.snapshot(),
                None => Snapshot::new(),
            },
            fault_dumps: Vec::new(),
        };
    }
    let mut preloaded = first_chunk.len() as u64;

    let mut merged = WorkerOut::default();
    let mut session_stats = SessionStats::default();
    let mut metrics = Snapshot::new();
    if workers == 1 {
        let queue = Worker::new_fifo();
        for item in first_chunk {
            queue.push(item);
        }
        let (out, stats, snap) =
            worker_loop(&factory, dev, cfg, &dispenser, &incumbent, &classes, &queue, &[], 0);
        merged = out;
        session_stats = stats;
        metrics = snap;
    } else {
        // Seed every worker's deque with a chunk *before* spawning.
        // Thread start latency is comparable to a whole small sweep, so
        // distributing work by timing (first thread up wins the
        // dispenser) can collapse onto one thread; distributing it by
        // placement cannot. Combined with steals never taking a queue's
        // last task, every seeded worker is guaranteed to process at
        // least one variant on its own thread — which is also what keeps
        // the `dse.variant` trace genuinely multi-lane.
        let queues: Vec<Worker<IndexedVariant>> =
            (0..workers).map(|_| Worker::new_fifo()).collect();
        for item in first_chunk {
            queues[0].push(item);
        }
        for queue in &queues[1..] {
            let chunk = dispenser.refill(cfg.chunk);
            preloaded += chunk.len() as u64;
            for item in chunk {
                queue.push(item);
            }
        }
        let stealers: Vec<Stealer<IndexedVariant>> = queues.iter().map(Worker::stealer).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = queues
                .iter()
                .enumerate()
                .map(|(w, queue)| {
                    let (factory, dispenser, incumbent, classes, stealers) =
                        (&factory, &dispenser, &incumbent, &classes, &stealers[..]);
                    scope.spawn(move || {
                        worker_loop(
                            factory, dev, cfg, dispenser, incumbent, classes, queue, stealers, w,
                        )
                    })
                })
                .collect();
            for h in handles {
                let (out, stats, snap) = h.join().expect("search worker panicked");
                merged.valid.extend(out.valid);
                merged.invalid.extend(out.invalid);
                merged.stats += out.stats;
                merged.fault_dumps.extend(out.fault_dumps);
                session_stats += stats;
                metrics.merge(&snap);
            }
        });
    }

    // The seed chunks were drawn outside any worker loop.
    merged.stats.generated += preloaded;

    // Deterministic ranking: EKIT descending, generation index ascending
    // — never by which worker finished first.
    merged.valid.sort_by(|(ia, a), (ib, b)| {
        b.report.throughput.ekit.total_cmp(&a.report.throughput.ekit).then_with(|| ia.cmp(ib))
    });
    merged.valid.truncate(cfg.top_k);
    merged.invalid.sort_by_key(|iv| iv.index);
    merged.fault_dumps.sort_by(|(a, _), (b, _)| a.cmp(b));

    // A shared live registry accumulated every worker's observability
    // metrics as the sweep ran; fold its final state in exactly once.
    if let Some(live) = &cfg.live {
        metrics.merge(&live.snapshot());
    }

    SearchOutcome {
        leaderboard: merged.valid.into_iter().map(|(_, e)| e).collect(),
        invalid: merged.invalid,
        stats: merged.stats,
        session: session_stats,
        metrics,
        fault_dumps: merged.fault_dumps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::{eval_small, stratix_v_gsd8};
    use tytra_ir::MemForm;
    use tytra_kernels::Sor;

    fn space() -> ExplorationConfig {
        ExplorationConfig {
            lanes: vec![1, 2, 4, 8, 16, 32],
            vects: vec![1, 2],
            forms: vec![MemForm::A, MemForm::B],
            include_seq: false,
            workers: 2,
        }
    }

    fn fingerprint(o: &SearchOutcome) -> (Vec<(String, u64)>, Vec<String>) {
        (
            o.leaderboard
                .iter()
                .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
                .collect(),
            o.invalid.iter().map(|iv| iv.variant.tag()).collect(),
        )
    }

    #[test]
    fn pruned_equals_exhaustive_on_eval_small() {
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let pruned = search(&sor, &dev, &SearchConfig::pruned(space()));
        let exhaustive = search(&sor, &dev, &SearchConfig::exhaustive(space()));
        assert_eq!(fingerprint(&pruned), fingerprint(&exhaustive));
        assert_eq!(exhaustive.stats.estimated, exhaustive.stats.generated);
        assert!(
            pruned.stats.pruned() > 0,
            "lanes 16/32 cannot fit eval-small, so the bound must prune: {:?}",
            pruned.stats
        );
        assert!(pruned.stats.estimated < exhaustive.stats.estimated);
    }

    #[test]
    fn leaderboard_is_worker_count_invariant() {
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let runs: Vec<_> = [1usize, 2, 4, 7]
            .iter()
            .map(|&w| {
                let cfg = SearchConfig::pruned(ExplorationConfig { workers: w, ..space() });
                fingerprint(&search(&sor, &dev, &cfg))
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(&runs[0], r);
        }
    }

    #[test]
    fn matches_explore_ranking_on_valid_variants() {
        // The search leaderboard must agree with the legacy engine's
        // ranking of device-fitting variants (bit-equal EKITs).
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let outcome = search(&sor, &dev, &SearchConfig::exhaustive(space()));
        let legacy = crate::explore::explore(&sor, &dev, &space());
        let legacy_valid: Vec<(String, u64)> = legacy
            .iter()
            .filter(|e| e.is_valid())
            .take(outcome.leaderboard.len())
            .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
            .collect();
        let ours: Vec<(String, u64)> = outcome
            .leaderboard
            .iter()
            .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
            .collect();
        assert_eq!(ours, legacy_valid);
    }

    #[test]
    fn empty_space_returns_an_empty_outcome_without_workers() {
        let sor = Sor::cubic(16, 10); // 4096 items: 3 never divides
        let dev = eval_small();
        let cfg =
            SearchConfig::pruned(ExplorationConfig { lanes: vec![3], vects: vec![3], ..space() });
        let o = search(&sor, &dev, &cfg);
        assert!(o.leaderboard.is_empty());
        assert!(o.invalid.is_empty());
        assert_eq!(o.stats, SearchStats::default());
        assert_eq!(o.session.lookups(), 0, "no estimator work for an empty space");
    }

    #[test]
    fn incumbent_threshold_is_the_kth_best() {
        let inc = Incumbent::new(2);
        assert_eq!(inc.threshold(), f64::NEG_INFINITY);
        inc.record(5.0, 0);
        assert_eq!(inc.threshold(), f64::NEG_INFINITY, "board not full yet");
        inc.record(3.0, 1);
        assert_eq!(inc.threshold(), 3.0);
        inc.record(4.0, 2);
        assert_eq!(inc.threshold(), 4.0, "4.0 displaces 3.0 as 2nd best");
        inc.record(1.0, 3);
        assert_eq!(inc.threshold(), 4.0, "worse results never lower the bar");
    }

    fn faults_on_two_lanes(v: &Variant) -> bool {
        v.lanes == 2
    }

    #[test]
    fn injected_faults_skip_variants_without_aborting_the_sweep() {
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let clean_cfg = SearchConfig { top_k: 100, ..SearchConfig::exhaustive(space()) };
        let clean = search(&sor, &dev, &clean_cfg);
        assert_eq!(clean.stats.faulted, 0);
        assert!(clean.leaderboard.iter().any(|e| e.variant.lanes == 2), "space has 2-lane points");

        // Quiet the default panic hook while the injected panics fly.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let faulty_cfg =
            SearchConfig { fault_inject: Some(faults_on_two_lanes), ..clean_cfg.clone() };
        let outcome = search(&sor, &dev, &faulty_cfg);
        let pruned_cfg = SearchConfig {
            fault_inject: Some(faults_on_two_lanes),
            ..SearchConfig::pruned(space())
        };
        let pruned = search(&sor, &dev, &pruned_cfg);
        std::panic::set_hook(prev);

        // The sweep completed; every faulted variant was counted and
        // skipped, never estimated and never ranked.
        assert!(outcome.stats.faulted > 0);
        assert_eq!(outcome.stats.generated, clean.stats.generated);
        assert_eq!(outcome.stats.estimated + outcome.stats.faulted, clean.stats.estimated);
        assert!(outcome.leaderboard.iter().all(|e| e.variant.lanes != 2));
        assert!(pruned.leaderboard.iter().all(|e| e.variant.lanes != 2));

        // The healthy-variant leaderboard is bit-identical to the clean
        // run's board with the faulted variants removed.
        let expected: Vec<(String, u64)> = clean
            .leaderboard
            .iter()
            .filter(|e| !faults_on_two_lanes(&e.variant))
            .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
            .collect();
        let got: Vec<(String, u64)> = outcome
            .leaderboard
            .iter()
            .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn faults_ship_post_mortem_flight_dumps() {
        // top_k larger than the valid space keeps the incumbent board
        // unfilled, so no 2-lane variant can be bound-pruned before its
        // injected estimate fault fires — every fault is deterministic.
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let cfg = SearchConfig {
            fault_inject: Some(faults_on_two_lanes),
            top_k: 100,
            ..SearchConfig::pruned(space())
        };
        let outcome = search(&sor, &dev, &cfg);
        std::panic::set_hook(prev);

        assert!(outcome.stats.faulted > 0);
        assert_eq!(outcome.fault_dumps.len() as u64, outcome.stats.faulted);
        for (tag, dump) in &outcome.fault_dumps {
            assert!(tag.starts_with("l2_"), "only 2-lane variants fault: {tag}");
            // The post-mortem lane ends with the faulting variant's own
            // breadcrumb trail: bound pass, estimate entry, fault mark.
            assert!(dump.contains("dse.bound"), "{dump}");
            assert!(dump.contains("dse.variant"), "{dump}");
            assert!(dump.contains("dse.fault"), "{dump}");
            assert!(dump.contains("== flight recorder =="), "{dump}");
        }
    }

    #[test]
    fn live_registry_sees_progress_and_merges_once() {
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let live = Arc::new(Registry::new());
        let cfg = SearchConfig { live: Some(Arc::clone(&live)), ..SearchConfig::pruned(space()) };
        let outcome = search(&sor, &dev, &cfg);

        // The shared registry saw the whole sweep...
        let snap = live.snapshot();
        assert_eq!(snap.counter("dse.points"), outcome.stats.generated);
        assert_eq!(snap.counter("dse.pruned_unfit"), outcome.stats.pruned_unfit);
        // ...and the outcome metrics carry the same counts exactly once.
        assert_eq!(outcome.metrics.counter("dse.points"), outcome.stats.generated);
        let bound_ns = outcome
            .metrics
            .entries
            .iter()
            .find(|(name, _)| name == "dse.bound_ns")
            .expect("bound latency histogram present");
        match &bound_ns.1 {
            tytra_trace::metrics::MetricValue::Histogram(h) => {
                assert_eq!(h.count, outcome.stats.estimated + outcome.stats.pruned())
            }
            other => panic!("dse.bound_ns is not a histogram: {other:?}"),
        }

        // Without a live registry the same metrics land in the outcome
        // via the per-worker registries.
        let local = search(&sor, &dev, &SearchConfig::pruned(space()));
        assert_eq!(local.metrics.counter("dse.points"), local.stats.generated);
    }

    #[test]
    fn stats_arithmetic() {
        let s = SearchStats {
            generated: 24,
            estimated: 10,
            pruned_unfit: 8,
            pruned_bound: 6,
            stolen: 3,
            faulted: 2,
            classes: 5,
            collapsed: 4,
        };
        assert_eq!(s.pruned(), 14);
        assert!((s.pruned_fraction() - 14.0 / 24.0).abs() < 1e-12);
        assert_eq!(SearchStats::default().pruned_fraction(), 0.0);
        let mut t = s;
        t += s;
        assert_eq!(t.generated, 48);
        assert_eq!(t.stolen, 6);
        assert_eq!(t.faulted, 4);
        assert_eq!(t.classes, 10);
        assert_eq!(t.collapsed, 8);
    }

    #[test]
    fn prefilter_collapses_forms_at_nki_1() {
        // At NKI == 1 the A and B memory forms are provably
        // cost-congruent, so the prefilter halves the estimate count on
        // an A+B sweep — while the leaderboard stays bit-identical to
        // the exhaustive oracle for any worker count.
        let sor = Sor::cubic(16, 1);
        let dev = eval_small();
        let exhaustive = search(&sor, &dev, &SearchConfig::exhaustive(space()));
        assert_eq!(exhaustive.stats.collapsed, 0, "no prefilter in exhaustive mode");
        assert_eq!(exhaustive.stats.classes, 0);
        for workers in [1usize, 2, 4] {
            let cfg = SearchConfig::pruned(ExplorationConfig { workers, ..space() });
            let pruned = search(&sor, &dev, &cfg);
            assert_eq!(fingerprint(&pruned), fingerprint(&exhaustive), "workers = {workers}");
            assert!(
                pruned.stats.collapsed > 0,
                "A/B pairs at NKI == 1 must collapse: {:?}",
                pruned.stats
            );
            assert!(pruned.stats.classes > 0);
            assert_eq!(
                pruned.stats.estimated
                    + pruned.stats.collapsed
                    + pruned.stats.pruned()
                    + pruned.stats.faulted,
                pruned.stats.generated,
                "every generated variant is estimated, replicated or pruned: {:?}",
                pruned.stats
            );
        }
    }

    #[test]
    fn prefilter_is_silent_at_nki_above_1() {
        // NKI > 1 splits the A/B forms (host-transfer amortisation
        // differs), so with no other congruent axis in the space, no
        // variant may be replicated.
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let pruned = search(&sor, &dev, &SearchConfig::pruned(space()));
        assert_eq!(pruned.stats.collapsed, 0, "{:?}", pruned.stats);
    }
}
