//! Parallel variant enumeration and costing.
//!
//! Each worker thread owns a private [`EstimatorSession`], so variants
//! costed on the same worker share memoized per-function sub-results
//! with no locking at all; work is split by a static stride so the
//! result set (after the final sort) is deterministic regardless of
//! worker count.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tytra_cost::{reconfig_plan, CostReport, EstimatorSession, ReconfigPlan, SessionStats};
use tytra_device::TargetDevice;
use tytra_ir::MemForm;
use tytra_kernels::EvalKernel;
use tytra_trace::metrics::Snapshot;
use tytra_trace::recorder;
use tytra_trace::{self as trace};
use tytra_transform::{enumerate_variants, InnerKind, Variant};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ExplorationConfig {
    /// Lane counts to try (filtered for reshape legality).
    pub lanes: Vec<u64>,
    /// Vectorization degrees to try.
    pub vects: Vec<u32>,
    /// Memory-execution forms to try.
    pub forms: Vec<MemForm>,
    /// Include `seq` inner maps (off by default: HPC kernels pipeline).
    pub include_seq: bool,
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
}

impl Default for ExplorationConfig {
    fn default() -> ExplorationConfig {
        ExplorationConfig {
            lanes: vec![1, 2, 4, 8, 16, 32],
            vects: vec![1, 2],
            forms: vec![MemForm::A, MemForm::B],
            include_seq: false,
            workers: 0,
        }
    }
}

/// One costed point of the design space.
#[derive(Debug, Clone)]
pub struct EvaluatedVariant {
    /// The variant.
    pub variant: Variant,
    /// The cost model's full report.
    pub report: CostReport,
    /// For variants that do not fit: the C6 run-time-reconfiguration
    /// fallback (Fig 5), when the design is splittable.
    pub reconfig: Option<ReconfigPlan>,
}

impl EvaluatedVariant {
    /// Valid = fits the device.
    pub fn is_valid(&self) -> bool {
        self.report.fits
    }
}

/// Explore the design space of `kernel` on `dev`: lower and cost every
/// legal variant, in parallel. Results are sorted by descending EKIT.
pub fn explore(
    kernel: &dyn EvalKernel,
    dev: &TargetDevice,
    cfg: &ExplorationConfig,
) -> Vec<EvaluatedVariant> {
    explore_with_stats(kernel, dev, cfg).0
}

/// [`explore`], also returning the summed memo statistics of every
/// worker's estimator session (the `--stats` output of `tybec dse`).
pub fn explore_with_stats(
    kernel: &dyn EvalKernel,
    dev: &TargetDevice,
    cfg: &ExplorationConfig,
) -> (Vec<EvaluatedVariant>, SessionStats) {
    let (out, stats, _) = explore_with_metrics(kernel, dev, cfg);
    (out, stats)
}

/// [`explore_with_stats`], additionally merging every worker session's
/// metrics registry into one [`Snapshot`] (the `tybec dse --metrics`
/// table). Counters sum across workers; the stats and the snapshot read
/// the same underlying counters, so they cannot disagree.
pub fn explore_with_metrics(
    kernel: &dyn EvalKernel,
    dev: &TargetDevice,
    cfg: &ExplorationConfig,
) -> (Vec<EvaluatedVariant>, SessionStats, Snapshot) {
    let ngs = kernel.geometry().size();
    let mut variants = enumerate_variants(ngs, &cfg.lanes, &cfg.vects, &cfg.forms);
    if !cfg.include_seq {
        variants.retain(|v| v.inner == InnerKind::Pipe);
    }
    if variants.is_empty() {
        // Nothing survived the legality filter: short-circuit on the
        // calling thread. The old `.min(variants.len().max(1))` clamp
        // would spin up one worker just to iterate an empty list.
        return (Vec::new(), SessionStats::default(), Snapshot::new());
    }

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.workers
    }
    .min(variants.len());

    // Static strided split: worker w takes variants w, w+workers, ….
    // Every worker owns a session, so costing needs no shared state; the
    // final total sort makes the output independent of the partition.
    let mut stats = SessionStats::default();
    let mut metrics = Snapshot::new();
    let mut out: Vec<EvaluatedVariant> = Vec::with_capacity(variants.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let variants = &variants;
                s.spawn(move || {
                    if trace::enabled() {
                        trace::set_thread_label(&format!("dse-worker-{w}"));
                    }
                    let mut session = EstimatorSession::new(dev.clone());
                    let mut found = Vec::new();
                    for (idx, variant) in variants.iter().enumerate().skip(w).step_by(workers) {
                        // Always-on flight-recorder breadcrumb: if this
                        // point crashes, the post-mortem lane names it.
                        recorder::mark("dse.variant", idx as u64);
                        // One span per costed point, tagged with the
                        // worker lane, so sweeps render as parallel
                        // lanes in the Chrome sink. Gated on enabled():
                        // tag() formats a String we don't want to pay
                        // for on the untraced hot path.
                        let _sp = trace::enabled().then(|| {
                            trace::span("dse.variant")
                                .with("variant", variant.tag())
                                .with("worker", w as u64)
                        });
                        // Lowering can fail only for illegal variants,
                        // which enumerate_variants already filtered.
                        let Ok(module) = kernel.lower_variant(variant) else { continue };
                        // A faulting estimate (error or panic) skips the
                        // variant instead of killing the worker — one
                        // degenerate point must not abort the sweep.
                        let outcome = catch_unwind(AssertUnwindSafe(|| session.estimate(&module)));
                        let report = match outcome {
                            Ok(Ok(report)) => report,
                            Ok(Err(_)) | Err(_) => {
                                recorder::mark("dse.fault", idx as u64);
                                if trace::enabled() {
                                    let _f = trace::span("dse.fault")
                                        .with("variant", variant.tag())
                                        .with("worker", w as u64);
                                }
                                continue;
                            }
                        };
                        let reconfig = reconfig_plan(&report, dev);
                        found.push(EvaluatedVariant { variant: *variant, report, reconfig });
                    }
                    (found, session.stats(), session.metrics_snapshot())
                })
            })
            .collect();
        for h in handles {
            let (found, worker_stats, worker_metrics) = h.join().expect("worker panicked");
            out.extend(found);
            stats += worker_stats;
            metrics.merge(&worker_metrics);
        }
    });

    out.sort_by(|a, b| {
        b.report
            .throughput
            .ekit
            .total_cmp(&a.report.throughput.ekit)
            // tag_cmp is the same byte order as comparing tag() Strings,
            // without the two heap allocations per comparison.
            .then_with(|| a.variant.tag_cmp(&b.variant))
    });
    (out, stats, metrics)
}

/// The guided-optimisation selection: fastest valid variant.
pub fn select_best(evaluated: &[EvaluatedVariant]) -> Option<&EvaluatedVariant> {
    evaluated.iter().find(|e| e.is_valid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::{eval_small, stratix_v_gsd8};
    use tytra_kernels::Sor;

    fn small_cfg() -> ExplorationConfig {
        ExplorationConfig {
            lanes: vec![1, 2, 4],
            vects: vec![1],
            forms: vec![MemForm::A, MemForm::B],
            include_seq: false,
            workers: 2,
        }
    }

    #[test]
    fn explores_all_legal_variants() {
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let out = explore(&sor, &dev, &small_cfg());
        // 3 lanes × 1 vect × 2 forms = 6 points.
        assert_eq!(out.len(), 6);
        // Sorted by EKIT descending.
        for w in out.windows(2) {
            assert!(w[0].report.throughput.ekit >= w[1].report.throughput.ekit);
        }
    }

    #[test]
    fn best_variant_beats_baseline() {
        let sor = Sor::cubic(24, 100);
        let dev = stratix_v_gsd8();
        let out = explore(&sor, &dev, &small_cfg());
        let best = select_best(&out).expect("something fits");
        let baseline =
            out.iter().find(|e| e.variant == Variant::baseline()).expect("baseline present");
        assert!(best.report.throughput.ekit >= baseline.report.throughput.ekit);
        assert!(best.variant.lanes >= 1);
    }

    #[test]
    fn oversized_variants_marked_invalid_on_small_device() {
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let cfg = ExplorationConfig { lanes: vec![1, 16], ..small_cfg() };
        let out = explore(&sor, &dev, &cfg);
        let big = out.iter().find(|e| e.variant.lanes == 16).expect("evaluated");
        assert!(!big.is_valid());
        let small = out.iter().find(|e| e.variant.lanes == 1).expect("evaluated");
        assert!(small.is_valid());
        // select_best skips the invalid one even if it estimated faster.
        let best = select_best(&out).unwrap();
        assert!(best.is_valid());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let runs: Vec<Vec<(String, u64)>> = [1usize, 2, 4]
            .iter()
            .map(|&w| {
                let cfg = ExplorationConfig { workers: w, ..small_cfg() };
                explore(&sor, &dev, &cfg)
                    .iter()
                    .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn sweep_stats_report_memo_hits() {
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let cfg = ExplorationConfig { workers: 1, ..small_cfg() };
        let (out, stats) = explore_with_stats(&sor, &dev, &cfg);
        assert_eq!(out.len(), 6);
        assert!(stats.hit_rate() > 0.5, "hit rate {:.3} ({stats:?})", stats.hit_rate());
    }

    #[test]
    fn metrics_snapshot_agrees_with_summed_stats() {
        // `--stats` and `--metrics` read the same registry counters, so
        // the snapshot totals must reproduce the summed SessionStats.
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let (out, stats, metrics) = explore_with_metrics(&sor, &dev, &small_cfg());
        assert_eq!(out.len(), 6);
        assert_eq!(
            stats.hits,
            metrics.counter("session.memo.hits") + metrics.counter("curves.hits")
        );
        assert_eq!(
            stats.misses,
            metrics.counter("session.memo.misses") + metrics.counter("curves.misses")
        );
        assert_eq!(stats.invalidations, metrics.counter("session.invalidations"));
        let table = metrics.render_table();
        assert!(table.contains("session.memo.hits"), "{table}");
        assert!(table.contains("estimator.estimate_ns"), "{table}");
    }

    #[test]
    fn zero_variants_short_circuit_without_spawning_a_worker() {
        // 3 divides neither 4096 nor any per-lane count here, so the
        // filtered variant list is empty; the engine must return on the
        // calling thread instead of running a spurious worker.
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let cfg = ExplorationConfig { lanes: vec![3], vects: vec![3], ..small_cfg() };
        let (out, stats, metrics) = explore_with_metrics(&sor, &dev, &cfg);
        assert!(out.is_empty());
        assert_eq!(stats, SessionStats::default());
        assert_eq!(stats.lookups(), 0, "no estimator session was ever exercised");
        assert_eq!(metrics.counter("session.memo.hits"), 0);
        assert_eq!(metrics.counter("session.memo.misses"), 0);
    }

    #[test]
    fn exploration_is_deterministic_despite_threads() {
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let a: Vec<String> =
            explore(&sor, &dev, &small_cfg()).iter().map(|e| e.variant.tag()).collect();
        let b: Vec<String> =
            explore(&sor, &dev, &small_cfg()).iter().map(|e| e.variant.tag()).collect();
        assert_eq!(a, b);
    }
}
