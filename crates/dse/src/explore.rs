//! Parallel variant enumeration and costing.

use crossbeam::channel;
use parking_lot::Mutex;
use tytra_cost::{estimate, reconfig_plan, CostReport, ReconfigPlan};
use tytra_device::TargetDevice;
use tytra_ir::MemForm;
use tytra_kernels::EvalKernel;
use tytra_transform::{enumerate_variants, InnerKind, Variant};

/// What to sweep.
#[derive(Debug, Clone)]
pub struct ExplorationConfig {
    /// Lane counts to try (filtered for reshape legality).
    pub lanes: Vec<u64>,
    /// Vectorization degrees to try.
    pub vects: Vec<u32>,
    /// Memory-execution forms to try.
    pub forms: Vec<MemForm>,
    /// Include `seq` inner maps (off by default: HPC kernels pipeline).
    pub include_seq: bool,
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
}

impl Default for ExplorationConfig {
    fn default() -> ExplorationConfig {
        ExplorationConfig {
            lanes: vec![1, 2, 4, 8, 16, 32],
            vects: vec![1, 2],
            forms: vec![MemForm::A, MemForm::B],
            include_seq: false,
            workers: 0,
        }
    }
}

/// One costed point of the design space.
#[derive(Debug, Clone)]
pub struct EvaluatedVariant {
    /// The variant.
    pub variant: Variant,
    /// The cost model's full report.
    pub report: CostReport,
    /// For variants that do not fit: the C6 run-time-reconfiguration
    /// fallback (Fig 5), when the design is splittable.
    pub reconfig: Option<ReconfigPlan>,
}

impl EvaluatedVariant {
    /// Valid = fits the device.
    pub fn is_valid(&self) -> bool {
        self.report.fits
    }
}

/// Explore the design space of `kernel` on `dev`: lower and cost every
/// legal variant, in parallel. Results are sorted by descending EKIT.
pub fn explore(
    kernel: &dyn EvalKernel,
    dev: &TargetDevice,
    cfg: &ExplorationConfig,
) -> Vec<EvaluatedVariant> {
    let ngs = kernel.geometry().size();
    let mut variants = enumerate_variants(ngs, &cfg.lanes, &cfg.vects, &cfg.forms);
    if !cfg.include_seq {
        variants.retain(|v| v.inner == InnerKind::Pipe);
    }

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.workers
    }
    .min(variants.len().max(1));

    let (tx, rx) = channel::unbounded::<Variant>();
    for v in &variants {
        tx.send(*v).expect("channel open");
    }
    drop(tx);

    let results: Mutex<Vec<EvaluatedVariant>> = Mutex::new(Vec::with_capacity(variants.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            s.spawn(move || {
                while let Ok(variant) = rx.recv() {
                    // Lowering can fail only for illegal variants, which
                    // enumerate_variants already filtered; costing is
                    // infallible on lowered modules.
                    let Ok(module) = kernel.lower_variant(&variant) else { continue };
                    let Ok(report) = estimate(&module, dev) else { continue };
                    let reconfig = reconfig_plan(&report, dev);
                    results.lock().push(EvaluatedVariant { variant, report, reconfig });
                }
            });
        }
    });

    let mut out = results.into_inner();
    out.sort_by(|a, b| {
        b.report
            .throughput
            .ekit
            .total_cmp(&a.report.throughput.ekit)
            .then_with(|| a.variant.tag().cmp(&b.variant.tag()))
    });
    out
}

/// The guided-optimisation selection: fastest valid variant.
pub fn select_best(evaluated: &[EvaluatedVariant]) -> Option<&EvaluatedVariant> {
    evaluated.iter().find(|e| e.is_valid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::{eval_small, stratix_v_gsd8};
    use tytra_kernels::Sor;

    fn small_cfg() -> ExplorationConfig {
        ExplorationConfig {
            lanes: vec![1, 2, 4],
            vects: vec![1],
            forms: vec![MemForm::A, MemForm::B],
            include_seq: false,
            workers: 2,
        }
    }

    #[test]
    fn explores_all_legal_variants() {
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let out = explore(&sor, &dev, &small_cfg());
        // 3 lanes × 1 vect × 2 forms = 6 points.
        assert_eq!(out.len(), 6);
        // Sorted by EKIT descending.
        for w in out.windows(2) {
            assert!(w[0].report.throughput.ekit >= w[1].report.throughput.ekit);
        }
    }

    #[test]
    fn best_variant_beats_baseline() {
        let sor = Sor::cubic(24, 100);
        let dev = stratix_v_gsd8();
        let out = explore(&sor, &dev, &small_cfg());
        let best = select_best(&out).expect("something fits");
        let baseline =
            out.iter().find(|e| e.variant == Variant::baseline()).expect("baseline present");
        assert!(best.report.throughput.ekit >= baseline.report.throughput.ekit);
        assert!(best.variant.lanes >= 1);
    }

    #[test]
    fn oversized_variants_marked_invalid_on_small_device() {
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let cfg = ExplorationConfig { lanes: vec![1, 16], ..small_cfg() };
        let out = explore(&sor, &dev, &cfg);
        let big = out.iter().find(|e| e.variant.lanes == 16).expect("evaluated");
        assert!(!big.is_valid());
        let small = out.iter().find(|e| e.variant.lanes == 1).expect("evaluated");
        assert!(small.is_valid());
        // select_best skips the invalid one even if it estimated faster.
        let best = select_best(&out).unwrap();
        assert!(best.is_valid());
    }

    #[test]
    fn exploration_is_deterministic_despite_threads() {
        let sor = Sor::cubic(16, 10);
        let dev = stratix_v_gsd8();
        let a: Vec<String> =
            explore(&sor, &dev, &small_cfg()).iter().map(|e| e.variant.tag()).collect();
        let b: Vec<String> =
            explore(&sor, &dev, &small_cfg()).iter().map(|e| e.variant.tag()).collect();
        assert_eq!(a, b);
    }
}
