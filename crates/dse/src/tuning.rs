//! Guided, targeted tuning — the feedback path the paper's limiter
//! output "opens the route to" (§I).
//!
//! Starting from the baseline variant, each step reads the cost model's
//! limiting parameter and applies the corresponding move:
//!
//! * compute-bound → double the lanes (more thread parallelism);
//! * host-bandwidth wall → move Form A → B (stage data in device DRAM);
//! * DRAM-bandwidth wall → try Form C if the working set fits BRAM,
//!   otherwise stop (the wall is fundamental for this kernel);
//! * overhead-bound → halve the lanes (fewer streams to set up);
//! * fill-bound → stop (the kernel is too small to matter).
//!
//! The loop ends when a move yields no EKIT improvement, a move is
//! unavailable, or the variant stops fitting.

use tytra_cost::{CostReport, EstimatorSession, Limiter};
use tytra_device::TargetDevice;
use tytra_ir::MemForm;
use tytra_kernels::EvalKernel;
use tytra_transform::Variant;

/// One step of the tuning trajectory.
#[derive(Debug, Clone)]
pub struct TuningStep {
    /// Variant evaluated at this step.
    pub variant: Variant,
    /// Its EKIT.
    pub ekit: f64,
    /// The wall the cost model reported.
    pub limiter: Limiter,
    /// The move taken in response (None on the final step).
    pub action: Option<&'static str>,
}

/// Run the guided loop; returns the trajectory (at least one step).
pub fn tune(
    kernel: &dyn EvalKernel,
    dev: &TargetDevice,
    start: Variant,
    max_steps: usize,
) -> Vec<TuningStep> {
    let mut session = EstimatorSession::new(dev.clone());
    tune_session(kernel, &mut session, start, max_steps)
}

/// [`tune`] through an existing estimator session: successive tuning
/// steps differ by one knob, so nearly every sub-result replays from the
/// memo tables.
pub fn tune_session(
    kernel: &dyn EvalKernel,
    session: &mut EstimatorSession,
    start: Variant,
    max_steps: usize,
) -> Vec<TuningStep> {
    let mut trajectory = Vec::new();
    let mut current = start;
    let Some(mut report) = cost_of(kernel, session, &current) else {
        return trajectory;
    };

    for _ in 0..max_steps {
        let limiter = report.limiter;
        let dev = session.device();
        let Some((next, action)) = next_move(kernel, dev, &current, limiter, &report) else {
            trajectory.push(TuningStep {
                variant: current,
                ekit: report.throughput.ekit,
                limiter,
                action: None,
            });
            return trajectory;
        };
        let Some(next_report) = cost_of(kernel, session, &next) else {
            trajectory.push(TuningStep {
                variant: current,
                ekit: report.throughput.ekit,
                limiter,
                action: None,
            });
            return trajectory;
        };
        let improved =
            next_report.fits && next_report.throughput.ekit > report.throughput.ekit * 1.001;
        trajectory.push(TuningStep {
            variant: current,
            ekit: report.throughput.ekit,
            limiter,
            action: if improved { Some(action) } else { None },
        });
        if !improved {
            return trajectory;
        }
        current = next;
        report = next_report;
    }
    trajectory.push(TuningStep {
        variant: current,
        ekit: report.throughput.ekit,
        limiter: report.limiter,
        action: None,
    });
    trajectory
}

fn cost_of(
    kernel: &dyn EvalKernel,
    session: &mut EstimatorSession,
    v: &Variant,
) -> Option<CostReport> {
    let m = kernel.lower_variant(v).ok()?;
    session.estimate(&m).ok()
}

fn next_move(
    kernel: &dyn EvalKernel,
    dev: &TargetDevice,
    v: &Variant,
    limiter: Limiter,
    report: &CostReport,
) -> Option<(Variant, &'static str)> {
    let ngs = kernel.geometry().size();
    match limiter {
        Limiter::Compute => {
            let next = Variant { lanes: v.lanes * 2, ..*v };
            next.is_legal(ngs).then_some((next, "double lanes"))
        }
        Limiter::HostBandwidth => match v.form {
            MemForm::A => {
                Some((Variant { form: MemForm::B, ..*v }, "stage in device DRAM (Form B)"))
            }
            _ => None,
        },
        Limiter::DramBandwidth => {
            // Form C only if the working set fits on-chip.
            let bytes_needed = report.params.total_bytes() as u64;
            let bram_bytes = dev.capacity.bram_bits / 8;
            if v.form != MemForm::C && bytes_needed < bram_bytes / 2 {
                Some((Variant { form: MemForm::C, ..*v }, "move working set on chip (Form C)"))
            } else {
                None
            }
        }
        Limiter::Overhead => {
            if v.lanes > 1 {
                Some((Variant { lanes: v.lanes / 2, ..*v }, "halve lanes (fewer streams)"))
            } else {
                None
            }
        }
        Limiter::OffsetFill | Limiter::PipelineFill => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_kernels::Sor;

    #[test]
    fn tuning_starts_from_form_a_and_stages_to_b() {
        // Eight lanes outrun the PCIe link at a large grid, so Form A
        // starts host-bound.
        let sor = Sor::cubic(96, 1000);
        let dev = stratix_v_gsd8();
        let start = Variant { lanes: 8, form: MemForm::A, ..Variant::baseline() };
        let steps = tune(&sor, &dev, start, 10);
        assert!(!steps.is_empty());
        // The host wall must be diagnosed and the Form-B move taken.
        assert_eq!(steps[0].limiter, Limiter::HostBandwidth);
        assert_eq!(steps[0].action, Some("stage in device DRAM (Form B)"));
        assert!(steps.len() >= 2);
        assert_eq!(steps[1].variant.form, MemForm::B);
    }

    #[test]
    fn tuning_monotonically_improves() {
        let sor = Sor::cubic(64, 1000);
        let dev = stratix_v_gsd8();
        let steps = tune(&sor, &dev, Variant::baseline(), 10);
        for w in steps.windows(2) {
            assert!(w[1].ekit > w[0].ekit, "{steps:#?}");
        }
    }

    #[test]
    fn compute_bound_start_adds_lanes() {
        let sor = Sor::cubic(64, 1000);
        let dev = stratix_v_gsd8();
        let steps = tune(&sor, &dev, Variant::baseline(), 10);
        // At least one doubling before any wall.
        assert!(steps.iter().any(|s| s.action == Some("double lanes")), "{steps:#?}");
        // Final variant has more lanes than baseline.
        assert!(steps.last().unwrap().variant.lanes > 1);
    }

    #[test]
    fn trajectory_bounded_by_max_steps() {
        let sor = Sor::cubic(64, 1000);
        let dev = stratix_v_gsd8();
        let steps = tune(&sor, &dev, Variant::baseline(), 3);
        assert!(steps.len() <= 4);
    }

    #[test]
    fn final_step_has_no_action() {
        let sor = Sor::cubic(64, 1000);
        let dev = stratix_v_gsd8();
        let steps = tune(&sor, &dev, Variant::baseline(), 10);
        assert_eq!(steps.last().unwrap().action, None);
    }
}
