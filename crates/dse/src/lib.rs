//! # tytra-dse — design-space exploration
//!
//! The use-case the cost model exists for (paper §I): "a compiler that
//! automatically creates and evaluates design variants for an HPC
//! kernel". This crate drives it:
//!
//! * [`search()`][search::search] — the branch-and-bound engine: a lazy
//!   variant generator feeding work-stealing worker deques, with an
//!   admissible analytic bound pruning variants that cannot fit the
//!   device or beat the incumbent before the full estimate runs
//!   (bit-identical leaderboards to exhaustive mode);
//! * [`explore()`][explore::explore] — the exhaustive legacy engine:
//!   generate every legal variant of a kernel by type transformation,
//!   lower each to TyTra-IR and cost it, in parallel across worker
//!   threads, each holding its own warm `EstimatorSession`
//!   ([`explore_with_stats`] also reports the summed memo hit rates);
//! * [`select_best`] — the guided-optimisation choice: fastest EKIT
//!   among variants that fit the device and saturate no illegal
//!   constraint;
//! * [`lane_sweep`] — the Fig 15 experiment: utilisation per resource,
//!   throughput and wall identification as lanes scale;
//! * [`tune`] — the feedback loop the paper's bottleneck output enables:
//!   repeatedly relax the binding wall until no move helps.

pub mod explore;
pub mod report;
pub mod roofline;
pub mod search;
pub mod tuning;

pub use explore::{
    explore, explore_with_metrics, explore_with_stats, select_best, EvaluatedVariant,
    ExplorationConfig,
};
pub use report::{
    lane_sweep, lane_sweep_session, render_latency_stats_line, render_prefilter_stats_line,
    render_search_leaderboard, render_search_stats_line, render_stats_line, LaneSweepRow,
};
pub use roofline::{roofline, RooflinePoint};
pub use search::{search, InvalidVariant, SearchConfig, SearchMode, SearchOutcome, SearchStats};
pub use tuning::{tune, tune_session, TuningStep};
