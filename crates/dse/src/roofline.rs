//! Roofline view of a design variant.
//!
//! The paper points at da Silva et al.'s roofline extension for FPGAs as
//! "quite relevant and something we are looking into for a more useful
//! representation of our cost-model" (§I related work). This module is
//! that representation: for each variant the cost model's parameters
//! place the design on an (arithmetic intensity, performance) plane with
//! a compute roof (lanes × vector width × clock ÷ initiation interval)
//! and a memory roof (effective off-chip bandwidth ÷ bytes per item).

use tytra_cost::{estimate, CostReport};
use tytra_device::TargetDevice;
use tytra_ir::{IrModule, TybecError};

/// A design variant's roofline placement. "Performance" is work-items
/// per second (each work-item is `NI` operations, so multiply by NI for
/// an ops/s view).
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Design name.
    pub design: String,
    /// Arithmetic intensity: datapath operations per off-chip byte.
    pub ops_per_byte: f64,
    /// Compute roof: items/s the datapath can retire.
    pub compute_roof: f64,
    /// Memory roof: items/s the off-chip links can feed.
    pub memory_roof: f64,
    /// Attainable performance: min of the roofs.
    pub attainable: f64,
    /// The ridge intensity where the roofs cross, ops/byte.
    pub ridge_ops_per_byte: f64,
    /// True when the design sits left of the ridge (memory-bound).
    pub memory_bound: bool,
}

impl RooflinePoint {
    /// Derive the placement from a cost report.
    pub fn from_report(r: &CostReport) -> RooflinePoint {
        let f_hz = r.clock.freq_mhz * 1e6;
        let lanes = r.params.knl.max(1) as f64 * f64::from(r.params.dv.max(1));
        let ii = r.params.sched.ii.max(1.0);
        let ni = r.params.sched.ni.max(1) as f64;
        let bytes = r.params.bytes_per_item.max(1) as f64;

        let compute_roof = f_hz * lanes / ii;
        let memory_roof = r.bandwidth.dram_effective / bytes;
        let ops_per_byte = ni / bytes;
        // Ridge in ops/byte: intensity at which the byte-fed item rate
        // equals the datapath item rate.
        let ridge_ops_per_byte = ni * r.bandwidth.dram_effective / (compute_roof * bytes);
        RooflinePoint {
            design: r.design.clone(),
            ops_per_byte,
            compute_roof,
            memory_roof,
            attainable: compute_roof.min(memory_roof),
            ridge_ops_per_byte,
            memory_bound: memory_roof < compute_roof,
        }
    }
}

/// Place a module on the roofline of a target.
pub fn roofline(m: &IrModule, dev: &TargetDevice) -> Result<RooflinePoint, TybecError> {
    Ok(RooflinePoint::from_report(&estimate(m, dev)?))
}

/// Render several placements as a text table plus a log-scale sketch.
pub fn render(points: &[RooflinePoint]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<26} {:>10} {:>14} {:>14} {:>14}  bound",
        "design", "ops/byte", "compute roof", "memory roof", "attainable"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:<26} {:>10.2} {:>14.3e} {:>14.3e} {:>14.3e}  {}",
            p.design,
            p.ops_per_byte,
            p.compute_roof,
            p.memory_roof,
            p.attainable,
            if p.memory_bound { "memory" } else { "compute" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_kernels::{EvalKernel, Hotspot, Sor};
    use tytra_transform::Variant;

    #[test]
    fn compute_bound_kernel_sits_under_the_compute_roof() {
        let sor = Sor::cubic(48, 10);
        let dev = stratix_v_gsd8();
        let m = sor.lower_variant(&Variant::baseline()).unwrap();
        let p = roofline(&m, &dev).unwrap();
        assert!(!p.memory_bound, "{p:?}");
        assert!((p.attainable - p.compute_roof).abs() < 1e-6);
        // 1 lane at ~250 MHz, II = 1 → ~2.5e8 items/s.
        assert!(p.compute_roof > 2.0e8 && p.compute_roof < 2.6e8, "{}", p.compute_roof);
    }

    #[test]
    fn lanes_raise_the_compute_roof_until_memory_binds() {
        let hs = Hotspot { rows: 512, cols: 512, nki: 100 };
        let dev = stratix_v_gsd8();
        let p1 = roofline(&hs.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap();
        let p8 = roofline(
            &hs.lower_variant(&Variant { lanes: 8, ..Variant::baseline() }).unwrap(),
            &dev,
        )
        .unwrap();
        assert!(p8.compute_roof > 7.0 * p1.compute_roof);
        assert!(p8.memory_bound, "8 lanes × 36 B/item should hit the memory roof");
        assert!(!p1.memory_bound);
        // The memory roof is a property of the traffic, not the lanes.
        let rel = (p8.memory_roof - p1.memory_roof).abs() / p1.memory_roof;
        assert!(rel < 0.2, "{} vs {}", p8.memory_roof, p1.memory_roof);
    }

    #[test]
    fn roofline_agrees_with_the_limiter() {
        let hs = Hotspot { rows: 512, cols: 512, nki: 100 };
        let dev = stratix_v_gsd8();
        let m = hs.lower_variant(&Variant { lanes: 8, ..Variant::baseline() }).unwrap();
        let report = estimate(&m, &dev).unwrap();
        let p = RooflinePoint::from_report(&report);
        assert_eq!(report.limiter, tytra_cost::Limiter::DramBandwidth);
        assert!(p.memory_bound);
    }

    #[test]
    fn render_lists_all_points() {
        let sor = Sor::cubic(24, 10);
        let dev = stratix_v_gsd8();
        let pts: Vec<RooflinePoint> = [1u64, 4]
            .iter()
            .map(|&l| {
                roofline(
                    &sor.lower_variant(&Variant { lanes: l, ..Variant::baseline() }).unwrap(),
                    &dev,
                )
                .unwrap()
            })
            .collect();
        let t = render(&pts);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("compute roof"));
    }
}
