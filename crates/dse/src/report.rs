//! The Fig 15 lane-sweep report: per-resource utilisation, bandwidth
//! pressure, throughput and wall identification as the number of kernel
//! pipeline lanes grows.

use crate::explore::EvaluatedVariant;
use crate::search::{SearchOutcome, SearchStats};
use tytra_cost::{EstimatorSession, Limiter};
use tytra_device::TargetDevice;
use tytra_kernels::EvalKernel;
use tytra_trace::metrics::{MetricValue, Snapshot};
use tytra_transform::Variant;

/// One row of the Fig 15 table.
#[derive(Debug, Clone)]
pub struct LaneSweepRow {
    /// Lane count.
    pub lanes: u64,
    /// Percent utilisation of registers.
    pub regs_pct: f64,
    /// Percent utilisation of ALUTs.
    pub aluts_pct: f64,
    /// Percent utilisation of BRAM.
    pub bram_pct: f64,
    /// Percent utilisation of DSPs.
    pub dsps_pct: f64,
    /// DRAM-bandwidth pressure: demand ÷ effective supply, percent.
    pub gmem_bw_pct: f64,
    /// Host-bandwidth pressure, percent.
    pub host_bw_pct: f64,
    /// EWGT/EKIT: kernel-instance (work-group) executions per second.
    pub ewgt: f64,
    /// Whether the variant fits the device.
    pub fits: bool,
    /// The binding wall.
    pub limiter: Limiter,
}

/// Run the lane sweep of `kernel` on `dev` for the given lane counts.
/// Illegal reshapes are skipped.
pub fn lane_sweep(
    kernel: &dyn EvalKernel,
    dev: &TargetDevice,
    lanes: &[u64],
    base: &Variant,
) -> Vec<LaneSweepRow> {
    let mut session = EstimatorSession::new(dev.clone());
    lane_sweep_session(kernel, &mut session, lanes, base)
}

/// [`lane_sweep`] through an existing estimator session, so the sweep
/// shares memoized sub-results with other passes over the same kernel
/// (the CLI reuses one session for sweep + tuning).
pub fn lane_sweep_session(
    kernel: &dyn EvalKernel,
    session: &mut EstimatorSession,
    lanes: &[u64],
    base: &Variant,
) -> Vec<LaneSweepRow> {
    let mut rows = Vec::new();
    for &l in lanes {
        let v = Variant { lanes: l, ..*base };
        let Ok(module) = kernel.lower_variant(&v) else { continue };
        let Ok(r) = session.estimate(&module) else { continue };
        rows.push(row_from(l, &r));
    }
    rows
}

fn row_from(lanes: u64, r: &tytra_cost::CostReport) -> LaneSweepRow {
    // Bandwidth pressure: time the link needs ÷ time the datapath needs,
    // as a percentage (100 % = the wall).
    let t_comp = r.throughput.t_compute.max(1e-30);
    let gmem = r.throughput.t_memory / t_comp * 100.0;
    let host = r.throughput.t_host / t_comp * 100.0;
    LaneSweepRow {
        lanes,
        regs_pct: r.utilization.regs * 100.0,
        aluts_pct: r.utilization.aluts * 100.0,
        bram_pct: r.utilization.bram_bits * 100.0,
        dsps_pct: r.utilization.dsps * 100.0,
        gmem_bw_pct: gmem,
        host_bw_pct: host,
        ewgt: r.throughput.ekit,
        fits: r.fits,
        limiter: r.limiter,
    }
}

/// Format the sweep as an aligned text table (used by `tybec` and the
/// fig15 binary).
pub fn render_table(rows: &[LaneSweepRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>12}  {:<6} wall",
        "lanes", "Regs%", "ALUTs%", "BRAM%", "DSPs%", "GMem-BW%", "Host-BW%", "EWGT/s", "fits"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>5} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>9.1} {:>12.1}  {:<6} {}",
            r.lanes,
            r.regs_pct,
            r.aluts_pct,
            r.bram_pct,
            r.dsps_pct,
            r.gmem_bw_pct,
            r.host_bw_pct,
            r.ewgt,
            if r.fits { "yes" } else { "NO" },
            r.limiter
        );
    }
    s
}

/// One line of the `tybec dse --stats` block. The numeric format is
/// byte-stable (scripts parse it); a session with no lookups at all
/// prints `n/a` rather than a misleading `0.0%`. The trailing eviction
/// count tracks CLOCK pressure on the bounded memo tables.
pub fn render_stats_line(label: &str, s: &tytra_cost::SessionStats) -> String {
    if s.lookups() == 0 {
        format!(
            "  {label:<14} {:>7} hits {:>7} misses  hit rate {:>6}  {:>5} evicted",
            s.hits, s.misses, "n/a", s.evictions
        )
    } else {
        format!(
            "  {label:<14} {:>7} hits {:>7} misses  hit rate {:>5.1}%  {:>5} evicted",
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.evictions
        )
    }
}

/// Find the lane count at which a predicate first trips — the wall
/// positions quoted in the paper ("we encounter the computation-wall at
/// six lanes").
pub fn first_wall(rows: &[LaneSweepRow], pred: impl Fn(&LaneSweepRow) -> bool) -> Option<u64> {
    rows.iter().find(|r| pred(r)).map(|r| r.lanes)
}

/// The one shared leaderboard header (the summary used to be recomputed
/// per call site; [`render_leaderboard`] and [`render_search_leaderboard`]
/// now share these formatters so the two views cannot drift).
fn leaderboard_header() -> String {
    format!("{:>4} {:<18} {:>12} {:>7}  wall\n", "#", "variant", "EKIT/s", "fits")
}

/// One leaderboard row, shared by the legacy and search renderers.
fn leaderboard_row(rank: usize, e: &EvaluatedVariant) -> String {
    let note = match &e.reconfig {
        Some(r) => {
            format!("{} (reconfig x{}: {:.1}/s)", e.report.limiter, r.personalities, r.ekit)
        }
        None => e.report.limiter.to_string(),
    };
    format!(
        "{:>4} {:<18} {:>12.1} {:>7}  {}\n",
        rank,
        e.variant.tag(),
        e.report.throughput.ekit,
        if e.report.fits { "yes" } else { "NO" },
        note
    )
}

/// Summarise a set of evaluated variants (from [`crate::explore()`][crate::explore::explore]) as a
/// compact leaderboard.
pub fn render_leaderboard(evaluated: &[EvaluatedVariant], top: usize) -> String {
    let mut s = leaderboard_header();
    for (i, e) in evaluated.iter().take(top).enumerate() {
        s.push_str(&leaderboard_row(i + 1, e));
    }
    s
}

/// Render a [`SearchOutcome`]'s leaderboard plus its infeasible-set
/// summary. Everything here is derived from the search *outcome* — never
/// from the scheduling-dependent counters — so the text is byte-identical
/// between pruned and exhaustive modes and across worker counts.
pub fn render_search_leaderboard(outcome: &SearchOutcome, top: usize) -> String {
    let mut s = render_leaderboard(&outcome.leaderboard, top);
    match outcome.invalid.len() {
        0 => {}
        1 => s.push_str("  (1 variant does not fit the device)\n"),
        n => s.push_str(&format!("  ({n} variants do not fit the device)\n")),
    }
    s
}

/// The `tybec dse --stats` search-counter line. Byte-stable format, like
/// [`render_stats_line`]; the counts themselves (other than `generated`)
/// legitimately vary with thread interleaving.
pub fn render_search_stats_line(s: &SearchStats) -> String {
    format!(
        "  search         {:>7} generated {:>6} estimated {:>6} pruned ({} bound, {} unfit) {:>5} stolen {:>4} faulted",
        s.generated,
        s.estimated,
        s.pruned(),
        s.pruned_bound,
        s.pruned_unfit,
        s.stolen,
        s.faulted
    )
}

/// The `tybec dse --stats` per-variant costing-latency line: p50/p99 of
/// the estimator's bound and full-estimate passes, read from the
/// session-metrics histograms. The quantiles are log₂-bucket *upper
/// bounds* in nanoseconds (hence `≤`), so the line is byte-stable for a
/// given set of bucket hits; an empty histogram (e.g. bound in
/// `--exhaustive` mode, which never runs the bound pass) prints `n/a`.
pub fn render_latency_stats_line(snap: &Snapshot) -> String {
    fn quantiles(snap: &Snapshot, name: &str) -> (String, String) {
        match snap.get(name) {
            Some(MetricValue::Histogram(h)) if h.count > 0 => {
                (format!("≤{}", h.quantile_bound(0.50)), format!("≤{}", h.quantile_bound(0.99)))
            }
            _ => ("n/a".to_string(), "n/a".to_string()),
        }
    }
    let (bp50, bp99) = quantiles(snap, "estimator.bound_ns");
    let (ep50, ep99) = quantiles(snap, "estimator.estimate_ns");
    format!(
        "  latency (ns)   bound p50 {bp50:>9} p99 {bp99:>9}  estimate p50 {ep50:>9} p99 {ep99:>9}"
    )
}

/// The `tybec dse --stats` congruence-prefilter line. Only printed for
/// pruned searches (the prefilter is off in exhaustive mode); byte-stable
/// format like [`render_search_stats_line`].
pub fn render_prefilter_stats_line(s: &SearchStats) -> String {
    format!("  prefilter      {:>7} classes {:>8} collapsed", s.classes, s.collapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::eval_small;
    use tytra_ir::MemForm;
    use tytra_kernels::Sor;

    #[test]
    fn sweep_reproduces_fig15_wall_ordering() {
        // Form-B SOR on the eval target: utilisation grows with lanes;
        // the ALUT (computation) wall must fall between the host wall
        // (form A, ~4) and the DRAM wall (~16).
        let sor = Sor::cubic(48, 10);
        let dev = eval_small();
        let lanes: Vec<u64> = (0..=4).map(|i| 1u64 << i).collect();
        let rows = lane_sweep(&sor, &dev, &lanes, &Variant::baseline());
        assert_eq!(rows.len(), 5);
        // Monotone resource growth.
        for w in rows.windows(2) {
            assert!(w[1].aluts_pct > w[0].aluts_pct);
        }
        // The computation wall: ALUTs cross 100 %.
        let wall = first_wall(&rows, |r| r.aluts_pct > 100.0);
        assert!(wall.is_some(), "{}", render_table(&rows));
    }

    #[test]
    fn ewgt_grows_until_a_wall() {
        let sor = Sor::cubic(48, 10);
        let dev = eval_small();
        let rows = lane_sweep(&sor, &dev, &[1, 2, 4], &Variant::baseline());
        assert!(rows[1].ewgt > rows[0].ewgt);
    }

    #[test]
    fn form_a_shows_host_wall() {
        let sor = Sor::cubic(48, 10);
        let dev = eval_small();
        let base = Variant { form: MemForm::A, ..Variant::baseline() };
        let rows = lane_sweep(&sor, &dev, &[1, 2, 4, 8], &base);
        // Host pressure grows relative to compute as lanes shrink the
        // compute time.
        assert!(rows.last().unwrap().host_bw_pct > rows[0].host_bw_pct);
    }

    #[test]
    fn table_renders_all_rows() {
        let sor = Sor::cubic(16, 1);
        let dev = eval_small();
        let rows = lane_sweep(&sor, &dev, &[1, 2], &Variant::baseline());
        let t = render_table(&rows);
        assert!(t.contains("EWGT/s"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn illegal_lane_counts_are_skipped() {
        let sor = Sor::cubic(16, 1); // 4096 items
        let dev = eval_small();
        let rows = lane_sweep(&sor, &dev, &[1, 3], &Variant::baseline());
        assert_eq!(rows.len(), 1, "3 does not divide 4096");
    }

    #[test]
    fn stats_line_format_is_byte_stable() {
        use tytra_cost::SessionStats;
        let s = SessionStats { hits: 1234, misses: 56, invalidations: 0, evictions: 7 };
        assert_eq!(
            render_stats_line("total", &s),
            "  total             1234 hits      56 misses  hit rate  95.7%      7 evicted"
        );
    }

    #[test]
    fn stats_line_shows_na_for_an_untouched_session() {
        use tytra_cost::SessionStats;
        let line = render_stats_line("sweep+tuning", &SessionStats::default());
        assert_eq!(
            line,
            "  sweep+tuning         0 hits       0 misses  hit rate    n/a      0 evicted"
        );
        assert!(!line.contains("0.0%"), "untouched session must not claim a 0.0% rate: {line}");
    }

    #[test]
    fn search_stats_line_is_byte_stable() {
        let s = SearchStats {
            generated: 24,
            estimated: 10,
            pruned_unfit: 8,
            pruned_bound: 6,
            stolen: 3,
            faulted: 0,
            classes: 0,
            collapsed: 0,
        };
        assert_eq!(
            render_search_stats_line(&s),
            "  search              24 generated     10 estimated     14 pruned (6 bound, 8 unfit)     3 stolen    0 faulted"
        );
        let faulty = SearchStats { faulted: 2, ..s };
        assert!(render_search_stats_line(&faulty).ends_with("    2 faulted"));
    }

    #[test]
    fn prefilter_stats_line_is_byte_stable() {
        let s = SearchStats { classes: 12, collapsed: 12, ..SearchStats::default() };
        assert_eq!(
            render_prefilter_stats_line(&s),
            "  prefilter           12 classes       12 collapsed"
        );
    }

    #[test]
    fn search_stats_line_with_no_pruning() {
        let s = SearchStats { generated: 6, estimated: 6, ..SearchStats::default() };
        assert_eq!(
            render_search_stats_line(&s),
            "  search               6 generated      6 estimated      0 pruned (0 bound, 0 unfit)     0 stolen    0 faulted"
        );
    }

    #[test]
    fn latency_stats_line_is_byte_stable() {
        use tytra_trace::metrics::Registry;
        let reg = Registry::new();
        reg.histogram("estimator.bound_ns").record(100); // bucket bound 127
        reg.histogram("estimator.estimate_ns").record(1000); // bucket bound 1023
        assert_eq!(
            render_latency_stats_line(&reg.snapshot()),
            "  latency (ns)   bound p50      ≤127 p99      ≤127  estimate p50     ≤1023 p99     ≤1023"
        );
    }

    #[test]
    fn latency_stats_line_shows_na_for_empty_histograms() {
        // An exhaustive search never runs the bound pass; a dry run never
        // estimates. Neither may print a misleading `≤0`.
        let line = render_latency_stats_line(&Snapshot::new());
        assert_eq!(
            line,
            "  latency (ns)   bound p50       n/a p99       n/a  estimate p50       n/a p99       n/a"
        );
        use tytra_trace::metrics::Registry;
        let reg = Registry::new();
        reg.histogram("estimator.estimate_ns").record(1000);
        let mixed = render_latency_stats_line(&reg.snapshot());
        assert_eq!(
            mixed,
            "  latency (ns)   bound p50       n/a p99       n/a  estimate p50     ≤1023 p99     ≤1023"
        );
    }

    #[test]
    fn search_leaderboard_matches_legacy_rows_and_counts_the_unfit() {
        use crate::search::{search, SearchConfig};
        use crate::ExplorationConfig;
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let space = ExplorationConfig {
            lanes: vec![1, 2, 16],
            vects: vec![1],
            forms: vec![MemForm::A, MemForm::B],
            include_seq: false,
            workers: 1,
        };
        let outcome = search(&sor, &dev, &SearchConfig::pruned(space));
        let text = render_search_leaderboard(&outcome, 10);
        // Rows come from the same formatter as the legacy leaderboard.
        assert_eq!(
            text.lines().next().unwrap(),
            render_leaderboard(&outcome.leaderboard, 10).lines().next().unwrap()
        );
        assert!(
            text.contains("(2 variants do not fit the device)"),
            "lanes 16 under both forms must be counted: {text}"
        );
    }
}
