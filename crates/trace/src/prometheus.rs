//! Prometheus text-format exposition over [`metrics::Snapshot`], plus
//! a compact JSON encoding of the same snapshot (the line payload of
//! the [`sampler`](crate::sampler) time series).
//!
//! The renderer targets the [text exposition format]: one `# TYPE`
//! comment per family followed by its sample lines. Counters and
//! gauges map directly; a log₂ [`HistogramSummary`] maps to a native
//! Prometheus histogram whose `le` bucket bounds are the power-of-two
//! bucket upper bounds (cumulative counts, then `+Inf`, `_sum` and
//! `_count`). Metric names sanitize `.` (and anything else outside
//! `[a-zA-Z0-9_:]`) to `_`, so `session.memo.hits` scrapes as
//! `session_memo_hits`.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::json::number;
use crate::metrics::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// A snapshot name as a legal Prometheus metric name.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.entries {
        let metric = sanitize_metric_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {metric} counter\n{metric} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {metric} gauge\n{metric} {}", number(*v));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {metric} histogram");
                let mut cumulative = 0u64;
                for (b, n) in h.buckets.iter().enumerate() {
                    if *n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let le = if b == 0 { 0 } else { (1u64 << b) - 1 };
                    let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{metric}_sum {}", h.sum);
                let _ = writeln!(out, "{metric}_count {}", h.count);
            }
        }
    }
    out
}

/// Render a snapshot as one JSON object: counters and gauges as
/// numbers, histograms as `{count, sum, min, max, p50, p99}` (`min` 0
/// when empty). Keys keep the snapshot's (sorted) order.
pub fn render_snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in snap.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", crate::json::escape(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => out.push_str(&number(*v)),
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max,
                    h.quantile_bound(0.50),
                    h.quantile_bound(0.99),
                );
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("session.memo.hits").add(42);
        reg.gauge("dse.worker.0.points_per_sec").set(1234.5);
        let h = reg.histogram("estimator.estimate_ns");
        for v in [3u64, 3, 100, 100_000] {
            h.record(v);
        }
        reg.histogram("estimator.empty_ns");
        reg.snapshot()
    }

    #[test]
    fn names_sanitize_to_the_prometheus_charset() {
        assert_eq!(sanitize_metric_name("session.memo.hits"), "session_memo_hits");
        assert_eq!(sanitize_metric_name("dse.worker.0.pps"), "dse_worker_0_pps");
        assert_eq!(sanitize_metric_name("0weird"), "_0weird");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn counters_and_gauges_expose_with_type_lines() {
        let out = render_prometheus(&sample());
        assert!(out.contains("# TYPE session_memo_hits counter\nsession_memo_hits 42\n"), "{out}");
        assert!(
            out.contains(
                "# TYPE dse_worker_0_points_per_sec gauge\ndse_worker_0_points_per_sec 1234.5\n"
            ),
            "{out}"
        );
    }

    #[test]
    fn histograms_expose_cumulative_buckets_sum_and_count() {
        let out = render_prometheus(&sample());
        // Samples 3,3 land in le=3; 100 in le=127; 100000 in le=131071.
        assert!(out.contains("estimator_estimate_ns_bucket{le=\"3\"} 2\n"), "{out}");
        assert!(out.contains("estimator_estimate_ns_bucket{le=\"127\"} 3\n"), "{out}");
        assert!(out.contains("estimator_estimate_ns_bucket{le=\"131071\"} 4\n"), "{out}");
        assert!(out.contains("estimator_estimate_ns_bucket{le=\"+Inf\"} 4\n"), "{out}");
        assert!(out.contains("estimator_estimate_ns_sum 100106\n"), "{out}");
        assert!(out.contains("estimator_estimate_ns_count 4\n"), "{out}");
        // Empty histogram: no finite buckets, zero count.
        assert!(out.contains("estimator_empty_ns_bucket{le=\"+Inf\"} 0\n"), "{out}");
        assert!(out.contains("estimator_empty_ns_count 0\n"), "{out}");
    }

    #[test]
    fn every_line_is_comment_or_name_value() {
        for line in render_prometheus(&sample()).lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad: {line}"));
            assert!(!name.is_empty());
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value: {line}"));
        }
    }

    #[test]
    fn snapshot_json_parses_and_keeps_values() {
        let out = render_snapshot_json(&sample());
        let doc = parse(&out).unwrap_or_else(|e| panic!("{e}: {out}"));
        assert_eq!(doc.get("session.memo.hits").unwrap().as_num(), Some(42.0));
        let h = doc.get("estimator.estimate_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_num(), Some(4.0));
        assert_eq!(h.get("p50").unwrap().as_num(), Some(3.0));
        let empty = doc.get("estimator.empty_ns").unwrap();
        assert_eq!(empty.get("min").unwrap().as_num(), Some(0.0));
        assert_eq!(render_snapshot_json(&Snapshot::new()), "{}");
    }
}
