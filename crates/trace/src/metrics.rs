//! Named counters, gauges and histograms with a mergeable snapshot.
//!
//! A [`Registry`] is a string-keyed table of metric handles. Handles are
//! cheap `Arc`-backed clones: register once, keep the handle in a struct
//! field, and increment it lock-free on the hot path — the registry
//! lock is only taken at registration and snapshot time. Registries are
//! instantiable (the estimator gives each session its own, so parallel
//! DSE workers never contend) and snapshots [`merge`][Snapshot::merge]
//! so per-worker registries sum into one `--metrics` table.
//!
//! ```
//! use tytra_trace::metrics::Registry;
//! let reg = Registry::new();
//! let hits = reg.counter("memo.hits");
//! hits.incr();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//! let snap = reg.snapshot();
//! assert_eq!(format!("{}", snap.get("memo.hits").unwrap()), "3");
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const RELAXED: Ordering = Ordering::Relaxed;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not attached to any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.0.fetch_add(1, RELAXED);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, RELAXED);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(RELAXED)
    }
}

/// A last-write-wins instantaneous value (stored as `f64`).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge initialised to 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), RELAXED);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(RELAXED))
    }
}

const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Log₂ buckets: bucket `b` holds values whose bit length is `b`
    /// (i.e. `2^(b-1) ≤ v < 2^b`; bucket 0 holds exactly 0).
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> HistogramInner {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram over unsigned samples (typically nanoseconds), with
/// power-of-two buckets: cheap to record, mergeable, and good enough to
/// read off medians and tails to within a factor of two.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner::default()))
    }
}

impl Histogram {
    /// A free-standing histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let h = &*self.0;
        h.count.fetch_add(1, RELAXED);
        h.sum.fetch_add(v, RELAXED);
        h.min.fetch_min(v, RELAXED);
        h.max.fetch_max(v, RELAXED);
        let bucket = (64 - v.leading_zeros()) as usize;
        h.buckets[bucket].fetch_add(1, RELAXED);
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn summary(&self) -> HistogramSummary {
        let h = &*self.0;
        let mut buckets = [0u64; BUCKETS];
        for (b, slot) in buckets.iter_mut().zip(h.buckets.iter()) {
            *b = slot.load(RELAXED);
        }
        HistogramSummary {
            count: h.count.load(RELAXED),
            sum: h.sum.load(RELAXED),
            min: h.min.load(RELAXED),
            max: h.max.load(RELAXED),
            buckets,
        }
    }
}

/// Immutable histogram summary; the snapshot-side twin of [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log₂ bucket counts (see [`Histogram`]).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSummary {
    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in 0..=1), so accurate to within 2×. 0 when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { (1u64 << b) - 1 };
            }
        }
        self.max
    }

    /// Fold another summary into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// A live metric handle, as stored in a registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named table of metrics. See the module docs for the usage pattern.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the counter called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register the gauge called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register the histogram called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut table = self.inner.lock().expect("metrics registry poisoned");
        table.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Point-in-time values of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let table = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            entries: table
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.summary())),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram summary (boxed: the bucket array dwarfs the other
    /// variants).
    Histogram(Box<HistogramSummary>),
}

impl std::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricValue::Counter(v) => write!(f, "{v}"),
            MetricValue::Gauge(v) => write!(f, "{v:.3}"),
            MetricValue::Histogram(h) if h.count == 0 => write!(f, "count 0"),
            MetricValue::Histogram(h) => write!(
                f,
                "count {}  mean {}  p50 ≤{}  p95 ≤{}  max {}",
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.quantile_bound(0.50) as f64),
                fmt_ns(h.quantile_bound(0.95) as f64),
                fmt_ns(h.max as f64),
            ),
        }
    }
}

/// Render a nanosecond magnitude with a human unit (histograms in this
/// workspace sample durations).
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Sorted point-in-time view of a registry; mergeable across registries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// An empty snapshot (identity for [`merge`][Snapshot::merge]).
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name, 0 when absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Fold `other` into this snapshot: counters sum, gauges keep the
    /// maximum (workers report peaks), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.entries {
            match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => match (&mut self.entries[i].1, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (mine, theirs) => {
                        panic!("metric `{name}` merged across kinds: {mine:?} vs {theirs:?}")
                    }
                },
                Err(i) => self.entries.insert(i, (name.clone(), value.clone())),
            }
        }
    }

    /// Two-column text table (`  name  value`), one metric per line.
    pub fn render_table(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("a.count");
        c.incr();
        c.add(4);
        reg.gauge("a.level").set(2.5);
        // Re-registration returns the same underlying cell.
        reg.counter("a.count").incr();
        assert_eq!(c.get(), 6);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 6);
        assert_eq!(snap.get("a.level"), Some(&MetricValue::Gauge(2.5)));
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.sum, 101_106);
        // Median sample is 3 → bucket bound 3; tail is the max bucket.
        assert_eq!(s.quantile_bound(0.5), 3);
        assert!(s.quantile_bound(1.0) >= 100_000);
        assert_eq!(
            HistogramSummary { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
                .quantile_bound(0.5),
            0
        );
    }

    #[test]
    fn snapshots_merge_counters_gauges_histograms() {
        let a = Registry::new();
        a.counter("hits").add(3);
        a.gauge("depth").set(1.0);
        a.histogram("ns").record(8);
        let b = Registry::new();
        b.counter("hits").add(4);
        b.counter("only.b").incr();
        b.gauge("depth").set(5.0);
        b.histogram("ns").record(16);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("hits"), 7);
        assert_eq!(snap.counter("only.b"), 1);
        assert_eq!(snap.get("depth"), Some(&MetricValue::Gauge(5.0)));
        match snap.get("ns") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!((h.count, h.sum, h.min, h.max), (2, 24, 8, 16));
            }
            other => panic!("bad merge: {other:?}"),
        }
        let table = snap.render_table();
        assert!(table.contains("hits") && table.contains('7'), "{table}");
    }
}
