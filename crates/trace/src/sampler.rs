//! Periodic metrics streaming: a sampler thread snapshots a metrics
//! source on a fixed interval and appends one JSONL line per sample —
//! an interval-tagged time series a long DSE sweep (or the future
//! `tybec serve` daemon) can be watched through while it runs.
//!
//! Each line is a standalone JSON object:
//!
//! ```json
//! {"seq":3,"t_ms":1500,"interval_ms":500,"metrics":{"dse.points":128,...}}
//! ```
//!
//! `t_ms` is milliseconds since the sampler started; `metrics` is the
//! [`render_snapshot_json`](crate::prometheus::render_snapshot_json)
//! encoding of the source snapshot. [`Sampler::stop`] takes one final
//! sample before joining, so even a sweep shorter than the interval
//! produces a complete series with at least one line.

use crate::metrics::Snapshot;
use crate::prometheus::render_snapshot_json;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to a running sampler thread; dropping without
/// [`stop`][Sampler::stop] detaches the thread (it exits at the next
/// tick after the handle's stop flag drops).
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<usize>>,
}

impl Sampler {
    /// Start sampling `source` every `interval`, appending JSONL lines
    /// to `sink`. The source runs on the sampler thread, so it must be
    /// `Send` — a `move` closure over an `Arc<Registry>` is the
    /// intended shape.
    pub fn start(
        interval: Duration,
        source: impl Fn() -> Snapshot + Send + 'static,
        mut sink: impl Write + Send + 'static,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut seq = 0usize;
            let mut emit = |seq: usize| {
                let line = render_line(seq, t0.elapsed(), interval, &source());
                sink.write_all(line.as_bytes()).and_then(|()| sink.flush()).is_ok()
            };
            loop {
                if stop_flag.load(Ordering::Relaxed) {
                    // Final sample so the series always covers the end
                    // of the run.
                    if emit(seq) {
                        seq += 1;
                    }
                    return seq;
                }
                // Sleep in short slices so stop() never waits a full
                // interval behind a long period.
                let tick = Instant::now();
                while tick.elapsed() < interval && !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1).min(interval));
                }
                if !stop_flag.load(Ordering::Relaxed) {
                    if !emit(seq) {
                        return seq; // sink is gone; stop sampling
                    }
                    seq += 1;
                }
            }
        });
        Sampler { stop, handle: Some(handle) }
    }

    /// Signal the thread, wait for its final sample, and return the
    /// number of lines written.
    pub fn stop(mut self) -> usize {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

fn render_line(seq: usize, elapsed: Duration, interval: Duration, snap: &Snapshot) -> String {
    format!(
        "{{\"seq\":{seq},\"t_ms\":{},\"interval_ms\":{},\"metrics\":{}}}\n",
        elapsed.as_millis(),
        interval.as_millis(),
        render_snapshot_json(snap),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::Registry;
    use std::sync::Mutex;

    /// A `Write` that appends into shared memory, so tests can inspect
    /// what the sampler thread wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_are_interval_tagged_jsonl_over_the_live_registry() {
        let reg = Arc::new(Registry::new());
        let counter = reg.counter("dse.points");
        let buf = SharedBuf::default();
        let src = Arc::clone(&reg);
        let sampler = Sampler::start(Duration::from_millis(5), move || src.snapshot(), buf.clone());
        counter.add(7);
        std::thread::sleep(Duration::from_millis(20));
        counter.add(3);
        let written = sampler.stop();
        assert!(written >= 1, "at least the final sample");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), written);
        for (i, line) in lines.iter().enumerate() {
            let doc = parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(doc.get("seq").unwrap().as_num(), Some(i as f64));
            assert_eq!(doc.get("interval_ms").unwrap().as_num(), Some(5.0));
            assert!(doc.get("t_ms").unwrap().as_num().is_some());
            assert!(doc.get("metrics").unwrap().get("dse.points").is_some());
        }
        // The final (stop-time) sample saw every increment.
        let last = parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("metrics").unwrap().get("dse.points").unwrap().as_num(), Some(10.0));
    }

    #[test]
    fn stop_before_first_tick_still_writes_one_sample() {
        let reg = Arc::new(Registry::new());
        reg.counter("x").incr();
        let buf = SharedBuf::default();
        let src = Arc::clone(&reg);
        let sampler =
            Sampler::start(Duration::from_secs(3600), move || src.snapshot(), buf.clone());
        let written = sampler.stop();
        assert_eq!(written, 1);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"metrics\":{\"x\":1}"), "{text}");
    }
}
