//! # tytra-trace — observability for the estimator and DSE pipeline
//!
//! Hand-rolled (zero external dependencies, like the rest of the
//! workspace) structured tracing and metrics:
//!
//! * **spans** — [`span()`] opens a named, timed region on the calling
//!   thread; spans nest through a thread-local stack, so a DSE sweep
//!   renders as one tree per worker thread. Spans carry `key=value`
//!   [`Value`] fields (fingerprints, memo hit/miss, variant tags).
//!   Tracing is off by default and gated on one `AtomicBool`: a span
//!   site on the disabled path costs a single relaxed atomic load and
//!   allocates nothing.
//! * **metrics** — [`metrics::Registry`], a named table of counters,
//!   gauges and log₂-bucket histograms with a mergeable
//!   [`metrics::Snapshot`]. Always on (counters are uncontended
//!   atomics); the estimator session's memo statistics live here.
//! * **sinks** — [`sink::render_tree`] (human-readable span tree),
//!   [`sink::render_jsonl`] (one JSON object per span) and
//!   [`sink::render_chrome`] (Chrome trace-event JSON for
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev), with one
//!   lane per thread). All three are pure functions over
//!   `&[SpanRecord]`, so they are trivially testable and never touch
//!   global state.
//!
//! Completed spans accumulate in a global buffer; the owner of the
//! process (the `tybec` CLI, a bench binary, a test) calls
//! [`take_records`] to drain them and feeds a sink. The span taxonomy
//! used across the workspace is documented in `docs/observability.md`.
//!
//! ```
//! tytra_trace::set_enabled(true);
//! {
//!     let mut outer = tytra_trace::span("demo.outer");
//!     outer.record("answer", 42u64);
//!     let _inner = tytra_trace::span("demo.inner");
//! }
//! tytra_trace::set_enabled(false);
//! let records = tytra_trace::take_records();
//! let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
//! assert!(names.contains(&"demo.outer") && names.contains(&"demo.inner"));
//! println!("{}", tytra_trace::sink::render_tree(&records, &tytra_trace::thread_labels()));
//! ```

pub mod bounded;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod prometheus;
pub mod recorder;
pub mod sampler;
pub mod sink;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Master switch. All [`span()`] sites load this and bail before doing
/// any other work, so instrumentation left in hot paths is free when
/// tracing is off. (The [`recorder`] flight rings are independent of
/// this switch: they are on by default and stay on.)
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Completed spans, appended on guard drop, drained by [`take_records`].
/// Bounded by [`RECORD_CAP`]: once full, further spans are counted in
/// [`dropped_spans`] instead of growing memory without limit.
static RECORDS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Default ceiling on retained span records (see [`set_record_cap`]).
pub const DEFAULT_RECORD_CAP: usize = 1 << 16;

/// Current ceiling on [`RECORDS`].
static RECORD_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RECORD_CAP);

/// Spans discarded because [`RECORDS`] was at capacity — the
/// `trace.dropped_spans` counter.
static DROPPED_SPANS: AtomicU64 = AtomicU64::new(0);

/// Human labels for trace lanes, registered by [`set_thread_label`].
static LABELS: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

/// Monotonic time zero for the whole process: every timestamp is
/// nanoseconds since the first span (or the first explicit
/// [`set_enabled`]) of the process, so one trace file has one coherent
/// timeline across threads.
static ANCHOR: OnceLock<Instant> = OnceLock::new();

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Dense per-thread lane id (0 = unassigned). Distinct from the OS
    /// thread id so trace lanes are small and stable within a run.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Turn span collection on or off. Spans already open keep recording;
/// new span sites become no-ops immediately. Enabling also pins the
/// process time anchor so timestamps start near zero.
pub fn set_enabled(on: bool) {
    if on {
        let _ = ANCHOR.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span collection is on. Use this to gate instrumentation whose
/// *arguments* are expensive to build (a `format!`ed variant tag, say):
/// the span site itself needs no guard.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drain every completed span recorded so far, in completion order.
pub fn take_records() -> Vec<SpanRecord> {
    match RECORDS.lock() {
        Ok(mut v) => std::mem::take(&mut *v),
        Err(_) => Vec::new(),
    }
}

/// Copy (without draining) every completed span recorded so far. Used
/// by `tybec profile`, which needs to fold the records while leaving
/// them in place for a later `--trace` drain.
pub fn snapshot_records() -> Vec<SpanRecord> {
    RECORDS.lock().map(|v| v.clone()).unwrap_or_default()
}

/// The `trace.dropped_spans` counter: spans discarded because the
/// record buffer was at capacity. Monotone for the process lifetime.
pub fn dropped_spans() -> u64 {
    DROPPED_SPANS.load(Ordering::Relaxed)
}

/// Change the record-buffer capacity (default [`DEFAULT_RECORD_CAP`]).
/// Already-buffered records are kept even if over the new cap; only
/// future records are gated. Intended for tests and long daemons.
pub fn set_record_cap(cap: usize) {
    RECORD_CAP.store(cap, Ordering::Relaxed);
}

/// Label the calling thread's trace lane (e.g. `dse-worker-3`). The
/// label shows up as the thread name in the tree and Chrome sinks.
/// No-op while tracing is disabled.
pub fn set_thread_label(label: &str) {
    if !enabled() {
        return;
    }
    let tid = current_thread_id();
    if let Ok(mut labels) = LABELS.lock() {
        match labels.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, l)) => *l = label.to_string(),
            None => labels.push((tid, label.to_string())),
        }
    }
}

/// The thread labels registered so far, in registration order.
pub fn thread_labels() -> Vec<(u64, String)> {
    LABELS.lock().map(|l| l.clone()).unwrap_or_default()
}

/// A field value attached to a span. Numbers stay typed so sinks can
/// emit them as JSON numbers; non-finite floats degrade to strings in
/// the JSON sinks (JSON has no NaN/Infinity).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (fingerprints, counts, worker ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rates, scores).
    F64(f64),
    /// Boolean (memo hit/miss).
    Bool(bool),
    /// Free text (module names, variant tags).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One completed span: what the sinks consume.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Trace lane (dense per-thread id, see [`set_thread_label`]).
    pub tid: u64,
    /// Span name (`estimator.validate`, `dse.variant`, …).
    pub name: String,
    /// Nanoseconds since the process trace anchor.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// `key=value` fields, in recording order.
    pub fields: Vec<(String, Value)>,
}

struct SpanInner {
    id: u64,
    parent: Option<u64>,
    tid: u64,
    name: String,
    start_ns: u64,
    fields: Vec<(String, Value)>,
}

/// An open span; records itself on drop. Obtained from [`span()`].
///
/// When tracing is disabled the guard is inert: no id, no allocation,
/// and [`record`][Span::record] is a no-op (its value conversion is
/// skipped too, since `Into` runs inside the enabled check).
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attach a field. Keys repeat freely; sinks keep the order.
    pub fn record(&mut self, key: &str, value: impl Into<Value>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key.to_string(), value.into()));
        }
    }

    /// Builder-style [`record`][Span::record].
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Span {
        self.record(key, value);
        self
    }

    /// Whether this guard is actually collecting.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let end_ns = now_ns();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards are scope-shaped so our id is normally on top, but a
            // moved guard may drop out of order: remove by value.
            if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            tid: inner.tid,
            name: inner.name,
            start_ns: inner.start_ns,
            dur_ns: end_ns.saturating_sub(inner.start_ns),
            fields: inner.fields,
        };
        recorder::record_close(&record.name);
        if let Ok(mut records) = RECORDS.lock() {
            if records.len() < RECORD_CAP.load(Ordering::Relaxed) {
                records.push(record);
            } else {
                DROPPED_SPANS.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Open a span named `name` on the calling thread. The returned guard
/// times the region until it drops; nesting follows lexical scope.
///
/// The flight [`recorder`] logs the open unconditionally (one relaxed
/// load + a ring write, no allocation); everything else — ids,
/// timestamps, the record itself — happens only while tracing is
/// enabled.
pub fn span(name: &str) -> Span {
    recorder::record_open(name);
    if !ENABLED.load(Ordering::Relaxed) {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let tid = current_thread_id();
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            id,
            parent,
            tid,
            name: name.to_string(),
            start_ns: now_ns(),
            fields: Vec::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global collector is process-wide; tests that toggle it run
    /// under one lock so parallel test threads cannot interleave.
    pub(crate) static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let before = take_records().len();
        let mut s = span("never.recorded");
        assert!(!s.is_active());
        s.record("k", 1u64);
        drop(s);
        assert_eq!(take_records().len(), 0, "had {before} stale records");
    }

    #[test]
    fn nesting_links_parents_and_fields_survive() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _ = take_records();
        {
            let mut outer = span("t.outer").with("who", "outer");
            outer.record("n", 7u64);
            {
                let _inner = span("t.inner");
            }
        }
        set_enabled(false);
        let records = take_records();
        let outer = records.iter().find(|r| r.name == "t.outer").expect("outer recorded");
        let inner = records.iter().find(|r| r.name == "t.inner").expect("inner recorded");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.tid, inner.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert_eq!(
            outer.fields,
            vec![
                ("who".to_string(), Value::Str("outer".to_string())),
                ("n".to_string(), Value::U64(7)),
            ]
        );
    }

    #[test]
    fn record_buffer_is_bounded_and_counts_drops() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _ = take_records();
        set_record_cap(8);
        let dropped_before = dropped_spans();
        for _ in 0..20 {
            let _s = span("cap.test");
        }
        set_enabled(false);
        set_record_cap(DEFAULT_RECORD_CAP);
        let records = take_records();
        assert_eq!(records.len(), 8, "buffer capped");
        assert_eq!(dropped_spans() - dropped_before, 12, "overflow counted");
        // Draining frees the buffer: new spans record again.
        set_enabled(true);
        {
            let _s = span("cap.after");
        }
        set_enabled(false);
        assert_eq!(take_records().len(), 1);
    }

    #[test]
    fn spans_leave_breadcrumbs_in_the_flight_recorder() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        // Recorder-only (tracing off): the open is logged, nothing else.
        std::thread::spawn(|| {
            set_enabled(false);
            {
                let _s = span("crumb.untraced");
            }
            let d = recorder::dump_current_thread().expect("lane exists");
            let opens = d
                .events
                .iter()
                .filter(|e| e.name == "crumb.untraced")
                .map(|e| e.kind)
                .collect::<Vec<_>>();
            assert_eq!(opens, [recorder::EventKind::Open]);
        })
        .join()
        .unwrap();
        // Traced: both open and close land in the ring.
        set_enabled(true);
        {
            let _s = span("crumb.traced");
        }
        set_enabled(false);
        let _ = take_records();
        let d = recorder::dump_current_thread().expect("lane exists");
        let kinds: Vec<recorder::EventKind> =
            d.events.iter().filter(|e| e.name == "crumb.traced").map(|e| e.kind).collect();
        assert_eq!(kinds, [recorder::EventKind::Open, recorder::EventKind::Close]);
    }

    #[test]
    fn threads_get_distinct_lanes_and_labels() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let _ = take_records();
        let main_tid = {
            let _s = span("t.main");
            current_thread_id()
        };
        let worker_tid = std::thread::spawn(|| {
            set_thread_label("test-worker");
            let _s = span("t.worker");
            current_thread_id()
        })
        .join()
        .unwrap();
        set_enabled(false);
        assert_ne!(main_tid, worker_tid);
        let records = take_records();
        assert_eq!(records.iter().find(|r| r.name == "t.worker").unwrap().tid, worker_tid);
        assert!(thread_labels().iter().any(|(t, l)| *t == worker_tid && l == "test-worker"));
    }
}
