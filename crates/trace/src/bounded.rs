//! A size-bounded hash map with CLOCK (second-chance) eviction.
//!
//! Long-running deployments of the estimator keep several unbounded
//! memo tables alive: the `EstimatorSession` pass memos, the device
//! `CurveCache`, and the `tybec serve` cross-request estimate cache.
//! [`BoundedMap`] is the one eviction policy behind all of them:
//! entries keep a reference bit that every lookup sets; when an insert
//! finds the map full, a clock hand sweeps the slots, clearing
//! reference bits until it finds an unreferenced victim to replace.
//! CLOCK approximates LRU without per-access list surgery, so a warm
//! lookup stays a single hash probe plus one bit write — no allocation,
//! which the zero-alloc costing hot path relies on.
//!
//! Eviction never changes *values*: a re-inserted entry is recomputed
//! by the same deterministic code that produced the evicted one, so
//! memoized results stay bit-identical whatever the capacity.

use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// A hash map holding at most `capacity` entries, evicting with the
/// CLOCK policy when full. Lookups take `&mut self` because they set
/// the entry's reference bit.
#[derive(Debug)]
pub struct BoundedMap<K, V> {
    capacity: usize,
    slots: Vec<Slot<K, V>>,
    index: HashMap<K, usize>,
    hand: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> BoundedMap<K, V> {
    /// An empty map evicting beyond `capacity` entries (clamped to at
    /// least one so the map is always able to memoize something).
    pub fn new(capacity: usize) -> BoundedMap<K, V> {
        BoundedMap {
            capacity: capacity.max(1),
            slots: Vec::new(),
            index: HashMap::new(),
            hand: 0,
            evictions: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Entries evicted by the clock hand since construction (resets
    /// never count — only capacity pressure does).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look `key` up, marking the entry recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.index.get(key)?;
        let slot = &mut self.slots[i];
        slot.referenced = true;
        Some(&slot.value)
    }

    /// Like [`get`][BoundedMap::get], marking the entry used.
    pub fn contains_key(&mut self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Look `key` up without touching its reference bit — for read-only
    /// replay passes that should not count as recent use.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let &i = self.index.get(key)?;
        Some(&self.slots[i].value)
    }

    /// Insert (or replace) `key`. Returns `true` when the insert had to
    /// evict an unrelated entry to make room.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.index.get(&key) {
            let slot = &mut self.slots[i];
            slot.value = value;
            slot.referenced = true;
            return false;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push(Slot { key, value, referenced: true });
            return false;
        }
        // Full: sweep the clock hand, clearing reference bits, until an
        // unreferenced victim turns up. Terminates within two laps (the
        // first lap clears every bit).
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[i];
            if slot.referenced {
                slot.referenced = false;
            } else {
                self.index.remove(&slot.key);
                self.index.insert(key.clone(), i);
                *slot = Slot { key, value, referenced: true };
                self.evictions += 1;
                return true;
            }
        }
    }

    /// Drop every entry, keeping the eviction counter (a clear is an
    /// invalidation, not capacity pressure).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.hand = 0;
    }
}

impl<K: Eq + Hash + Clone, V> std::ops::Index<&K> for BoundedMap<K, V> {
    type Output = V;

    /// Read-only access to a key that must be present (does not touch
    /// the reference bit — use [`get`][BoundedMap::get] on lookups that
    /// should count as recent use).
    fn index(&self, key: &K) -> &V {
        let &i = self.index.get(key).expect("key present in BoundedMap");
        &self.slots[i].value
    }
}

/// A size-bounded set over the same CLOCK policy.
#[derive(Debug)]
pub struct BoundedSet<K> {
    map: BoundedMap<K, ()>,
}

impl<K: Eq + Hash + Clone> BoundedSet<K> {
    /// An empty set evicting beyond `capacity` members.
    pub fn new(capacity: usize) -> BoundedSet<K> {
        BoundedSet { map: BoundedMap::new(capacity) }
    }

    /// Membership test, marking the member recently used on a hit.
    pub fn contains(&mut self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Add `key`; returns `true` when an unrelated member was evicted.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ())
    }

    /// Members currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Members evicted since construction.
    pub fn evictions(&self) -> u64 {
        self.map.evictions()
    }

    /// Drop every member, keeping the eviction counter.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_up_to_capacity_without_evicting() {
        let mut m = BoundedMap::new(4);
        for i in 0..4u64 {
            assert!(!m.insert(i, i * 10));
        }
        assert_eq!(m.len(), 4);
        assert_eq!(m.evictions(), 0);
        for i in 0..4u64 {
            assert_eq!(m.get(&i), Some(&(i * 10)));
        }
    }

    #[test]
    fn evicts_the_unreferenced_entry_first() {
        let mut m = BoundedMap::new(2);
        m.insert('a', ());
        m.insert('b', ());
        // Cold start: every bit is set, so the sweep clears the lap and
        // takes the first slot in hand order ('a').
        assert!(m.insert('c', ()));
        assert!(m.get(&'a').is_none());
        // Steady state is where second-chance bites: 'c' still carries
        // the reference bit from its insert, 'b' was stripped by the
        // sweep — the unreferenced entry is the victim.
        assert!(m.insert('d', ()));
        assert!(m.get(&'c').is_some(), "referenced entry survives");
        assert!(m.get(&'b').is_none(), "unreferenced entry is the victim");
        assert_eq!(m.evictions(), 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn replacing_a_present_key_never_evicts() {
        let mut m = BoundedMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert!(!m.insert("a", 3));
        assert_eq!(m.get(&"a"), Some(&3));
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn clear_keeps_the_eviction_counter() {
        let mut m = BoundedMap::new(1);
        m.insert(1, ());
        m.insert(2, ());
        assert_eq!(m.evictions(), 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.evictions(), 1);
        m.insert(3, ());
        assert_eq!(m.get(&3), Some(&()));
    }

    #[test]
    fn index_reads_without_marking() {
        let mut m = BoundedMap::new(2);
        m.insert(7u64, "x");
        assert_eq!(m[&7], "x");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut m: BoundedMap<u64, u64> = BoundedMap::new(0);
        assert_eq!(m.capacity(), 1);
        m.insert(1, 1);
        assert_eq!(m.get(&1), Some(&1));
    }

    #[test]
    fn set_wraps_the_map() {
        let mut s = BoundedSet::new(2);
        assert!(!s.insert(1));
        assert!(!s.insert(2));
        s.contains(&1);
        s.contains(&2);
        assert!(s.insert(3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.evictions(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn heavy_churn_stays_within_capacity() {
        let mut m = BoundedMap::new(16);
        for i in 0..1000u64 {
            m.insert(i, i);
            let _ = m.get(&(i / 2));
        }
        assert_eq!(m.len(), 16);
        assert_eq!(m.evictions(), 1000 - 16);
    }
}
