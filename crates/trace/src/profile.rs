//! Self-profiling attribution: fold completed spans into per-name
//! self/total time, a ranked attribution table (`tybec profile`) and a
//! collapsed-stack ("folded") flamegraph sink.
//!
//! Self time is wall time not covered by child spans: a pass that
//! spends 1 ms total but 0.8 ms inside sub-passes attributes 0.2 ms to
//! itself. The folded sink emits one line per unique stack path —
//! `root;child;leaf <self_ns>` — the input format of
//! [inferno](https://github.com/jonhoo/inferno) `flamegraph.pl` and
//! [speedscope](https://www.speedscope.app/), so a traced sweep turns
//! into a flamegraph with two commands and no custom tooling.

use crate::{SpanRecord, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Per-span-name totals folded out of a record buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Summed wall time.
    pub total_ns: u64,
    /// Summed wall time minus child-span time (never negative).
    pub self_ns: u64,
    /// `memo_hit=true` fields seen on spans of this name.
    pub memo_hits: u64,
    /// `memo_hit=false` fields seen on spans of this name.
    pub memo_misses: u64,
}

impl Attribution {
    /// Memo hit rate in percent, `None` when no span of this name
    /// carried a `memo_hit` field.
    pub fn memo_rate(&self) -> Option<f64> {
        let lookups = self.memo_hits + self.memo_misses;
        if lookups == 0 {
            None
        } else {
            Some(self.memo_hits as f64 * 100.0 / lookups as f64)
        }
    }
}

fn memo_hit(r: &SpanRecord) -> Option<bool> {
    r.fields.iter().rev().find_map(|(k, v)| match (k.as_str(), v) {
        ("memo_hit", Value::Bool(b)) => Some(*b),
        _ => None,
    })
}

/// Fold records into per-name attribution rows, ranked by self time
/// (descending; name breaks ties so the order is deterministic).
pub fn attribution(records: &[SpanRecord]) -> Vec<Attribution> {
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if let Some(parent) = r.parent {
            *child_ns.entry(parent).or_default() += r.dur_ns;
        }
    }
    let mut rows: BTreeMap<&str, Attribution> = BTreeMap::new();
    for r in records {
        let row = rows.entry(r.name.as_str()).or_insert_with(|| Attribution {
            name: r.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            memo_hits: 0,
            memo_misses: 0,
        });
        row.count += 1;
        row.total_ns += r.dur_ns;
        // Children can overshoot the parent by clock jitter; clamp at 0.
        row.self_ns += r.dur_ns.saturating_sub(child_ns.get(&r.id).copied().unwrap_or(0));
        match memo_hit(r) {
            Some(true) => row.memo_hits += 1,
            Some(false) => row.memo_misses += 1,
            None => {}
        }
    }
    let mut out: Vec<Attribution> = rows.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    out
}

/// Render collapsed stacks: one `frame;frame;frame self_ns` line per
/// unique stack path with nonzero self time, sorted lexicographically.
/// Spans whose parent never completed root their own stack.
pub fn render_folded(records: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if let Some(parent) = r.parent.filter(|p| by_id.contains_key(p)) {
            *child_ns.entry(parent).or_default() += r.dur_ns;
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        let self_ns = r.dur_ns.saturating_sub(child_ns.get(&r.id).copied().unwrap_or(0));
        if self_ns == 0 {
            continue;
        }
        // Walk ancestors leaf→root, then reverse into root;…;leaf.
        let mut frames = vec![frame(&r.name)];
        let mut cursor = r.parent;
        while let Some(p) = cursor.and_then(|id| by_id.get(&id)) {
            frames.push(frame(&p.name));
            cursor = p.parent;
        }
        frames.reverse();
        *stacks.entry(frames.join(";")).or_default() += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in stacks {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// A span name as a folded-stack frame: the format reserves `;`
/// (separator) and whitespace (count delimiter), so both degrade to
/// `_`. Span names in this workspace use neither.
fn frame(name: &str) -> String {
    name.chars().map(|c| if c == ';' || c.is_whitespace() { '_' } else { c }).collect()
}

/// Render the ranked attribution table printed by `tybec profile`.
/// `self%` is relative to the summed self time of every row, which by
/// construction equals total traced wall time per thread.
pub fn render_attribution_table(rows: &[Attribution]) -> String {
    let grand_self: u64 = rows.iter().map(|r| r.self_ns).sum();
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<name_w$} {:>7} {:>10} {:>10} {:>6}  {:>6}",
        "pass", "calls", "total", "self", "self%", "memo"
    );
    for r in rows {
        let pct = if grand_self == 0 { 0.0 } else { r.self_ns as f64 * 100.0 / grand_self as f64 };
        let memo = match r.memo_rate() {
            Some(rate) => format!("{rate:.1}%"),
            None => "—".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<name_w$} {:>7} {:>10} {:>10} {:>5.1}%  {:>6}",
            r.name,
            r.count,
            fmt_ns(r.total_ns),
            fmt_ns(r.self_ns),
            pct,
            memo,
        );
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        parent: Option<u64>,
        name: &str,
        dur_ns: u64,
        fields: Vec<(String, Value)>,
    ) -> SpanRecord {
        SpanRecord { id, parent, tid: 1, name: name.to_string(), start_ns: 0, dur_ns, fields }
    }

    fn memo(hit: bool) -> Vec<(String, Value)> {
        vec![("memo_hit".to_string(), Value::Bool(hit))]
    }

    fn sample() -> Vec<SpanRecord> {
        vec![
            rec(1, None, "estimate", 1_000, vec![]),
            rec(2, Some(1), "schedule", 600, memo(false)),
            rec(3, Some(2), "resources", 100, memo(true)),
            rec(4, None, "estimate", 800, vec![]),
            rec(5, Some(4), "schedule", 300, memo(true)),
        ]
    }

    #[test]
    fn self_time_subtracts_children_and_ranks() {
        let rows = attribution(&sample());
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["estimate", "schedule", "resources"]);
        let estimate = &rows[0];
        assert_eq!((estimate.count, estimate.total_ns, estimate.self_ns), (2, 1_800, 900));
        let schedule = &rows[1];
        // 600-100 self on the first call, 300 on the second.
        assert_eq!((schedule.count, schedule.total_ns, schedule.self_ns), (2, 900, 800));
        assert_eq!(schedule.memo_rate(), Some(50.0));
        assert_eq!(estimate.memo_rate(), None);
        // Self times sum back to total traced wall.
        let grand: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(grand, 1_800);
    }

    #[test]
    fn children_overshooting_their_parent_clamp_to_zero() {
        let records =
            vec![rec(1, None, "outer", 100, vec![]), rec(2, Some(1), "inner", 150, vec![])];
        let rows = attribution(&records);
        let outer = rows.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(outer.self_ns, 0);
    }

    #[test]
    fn folded_stacks_join_ancestry_and_sum_self_ns() {
        let out = render_folded(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            ["estimate 900", "estimate;schedule 800", "estimate;schedule;resources 100",]
        );
        // Every line matches the `frames count` grammar.
        for line in lines {
            let (stack, n) = line.rsplit_once(' ').unwrap();
            assert!(stack.split(';').all(|f| !f.is_empty()));
            n.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn folded_escapes_separator_bytes_and_roots_orphans() {
        let records = vec![
            rec(1, Some(99), "week;end span", 10, vec![]), // parent 99 never completed
        ];
        let out = render_folded(&records);
        assert_eq!(out, "week_end_span 10\n");
    }

    #[test]
    fn zero_self_stacks_are_omitted() {
        let records = vec![rec(1, None, "a", 50, vec![]), rec(2, Some(1), "b", 50, vec![])];
        let out = render_folded(&records);
        assert_eq!(out, "a;b 50\n");
    }

    #[test]
    fn attribution_table_renders_ranked_rows() {
        let table = render_attribution_table(&attribution(&sample()));
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("pass") && lines[0].contains("self%"), "{table}");
        assert!(lines[1].starts_with("  estimate"), "{table}");
        assert!(lines[1].contains("50.0%"), "{table}"); // 900/1800 self
        assert!(lines[2].contains("44.4%"), "{table}"); // 800/1800 self
        assert!(lines[2].contains("50.0%"), "{table}"); // memo rate
        assert!(lines[1].trim_end().ends_with('—'), "{table}");
    }

    #[test]
    fn empty_records_render_empty_but_valid() {
        assert_eq!(render_folded(&[]), "");
        let table = render_attribution_table(&attribution(&[]));
        assert_eq!(table.lines().count(), 1, "{table}");
    }
}
