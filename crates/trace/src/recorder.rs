//! The flight recorder: always-on, crash-surviving event rings.
//!
//! Every thread that passes through a span site owns one fixed-capacity
//! ring of compact event records ([`RING_CAPACITY`] slots). The write
//! path is a single relaxed enabled-check plus a seqlocked slot write —
//! no lock, no allocation in steady state (the ring itself is allocated
//! once, the first time a thread records). Unlike the span collector
//! (off by default, drained post-hoc), the recorder is **on by
//! default** and never drained: it always holds the last-N events per
//! thread, so a panic, a `dse.fault` or a fuzz crash can [`dump`] the
//! immediate history of every lane post-mortem.
//!
//! Records are deliberately lossy where the span collector is exact:
//! names are truncated to [`NAME_BYTES`] bytes and there are no
//! timestamps, only a per-lane order stamp — the recorder answers
//! "what was this thread doing just now", not "how long did it take".
//!
//! Concurrency: each ring has exactly one writer (its owning thread);
//! [`dump`] may race it from any thread. Every slot is a seqlock over
//! plain atomics — the writer brackets its field stores with an
//! odd/even sequence, and a reader that observes an odd or changed
//! sequence discards the slot. A torn record is therefore impossible
//! by construction; at worst a dump misses the slot being overwritten
//! at that instant.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Events retained per thread lane (a power of two).
pub const RING_CAPACITY: usize = 256;

/// Name bytes kept per event (longer names are truncated).
pub const NAME_BYTES: usize = 24;

const NAME_WORDS: usize = NAME_BYTES / 8;

/// Recorder master switch. On by default; [`set_enabled`] exists for
/// overhead A/B measurements and the `TYTRA_FLIGHT_RECORDER=0` escape
/// hatch, not for normal operation.
static RECORDER_ON: AtomicBool = AtomicBool::new(true);

/// Every lane ever registered (threads never unregister: a dead
/// thread's last events are exactly what a post-mortem wants).
static LANES: Mutex<Vec<Arc<Lane>>> = Mutex::new(Vec::new());

thread_local! {
    static MY_LANE: std::cell::RefCell<Option<Arc<Lane>>> =
        const { std::cell::RefCell::new(None) };
}

/// What kind of history entry an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span()` was called).
    Open,
    /// A traced span closed (guard drop; recorder-only spans log opens).
    Close,
    /// A point event from [`mark`].
    Mark,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Open => 0,
            EventKind::Close => 1,
            EventKind::Mark => 2,
        }
    }

    fn from_code(c: u64) -> Option<EventKind> {
        match c {
            0 => Some(EventKind::Open),
            1 => Some(EventKind::Close),
            2 => Some(EventKind::Mark),
            _ => None,
        }
    }

    /// Fixed-width label for the text dump.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Open => "open ",
            EventKind::Close => "close",
            EventKind::Mark => "mark ",
        }
    }
}

/// One slot: a seqlock over plain atomics. `seq` is odd while the
/// writer is mid-update; `order` repeats the event number so a reader
/// can tell which generation of the ring it is looking at.
struct Slot {
    seq: AtomicU64,
    /// `kind (8 bits) | name_len (8 bits)`.
    meta: AtomicU64,
    /// Lane-local event number (the ring cursor at write time).
    order: AtomicU64,
    /// Free `u64` payload (variant index, case id, …).
    detail: AtomicU64,
    name: [AtomicU64; NAME_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            order: AtomicU64::new(0),
            detail: AtomicU64::new(0),
            name: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct Lane {
    /// The span collector's dense thread id, for cross-referencing
    /// dumps with trace lanes and `thread_labels()`.
    tid: u64,
    /// Events written so far; the next write goes to
    /// `slots[cursor % RING_CAPACITY]`.
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl Lane {
    fn write(&self, kind: EventKind, name: &str, detail: u64) {
        let cur = self.cursor.load(Ordering::Relaxed);
        let slot = &self.slots[(cur as usize) & (RING_CAPACITY - 1)];
        let len = name.len().min(NAME_BYTES);
        let mut words = [0u64; NAME_WORDS];
        for (i, &b) in name.as_bytes()[..len].iter().enumerate() {
            words[i / 8] |= u64::from(b) << ((i % 8) * 8);
        }
        let seq0 = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq0 | 1, Ordering::Release);
        slot.meta.store(kind.code() | ((len as u64) << 8), Ordering::Relaxed);
        slot.order.store(cur, Ordering::Relaxed);
        slot.detail.store(detail, Ordering::Relaxed);
        for (w, v) in slot.name.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store((seq0 | 1).wrapping_add(1), Ordering::Release);
        self.cursor.store(cur + 1, Ordering::Release);
    }

    fn read_slot(&self, index: usize) -> Option<FlightEvent> {
        let slot = &self.slots[index];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None; // never written, or mid-write
        }
        let meta = slot.meta.load(Ordering::Relaxed);
        let order = slot.order.load(Ordering::Relaxed);
        let detail = slot.detail.load(Ordering::Relaxed);
        let mut words = [0u64; NAME_WORDS];
        for (w, v) in words.iter_mut().zip(slot.name.iter()) {
            *w = v.load(Ordering::Relaxed);
        }
        if slot.seq.load(Ordering::Acquire) != s1 {
            return None; // overwritten while reading
        }
        let kind = EventKind::from_code(meta & 0xFF)?;
        let len = ((meta >> 8) & 0xFF) as usize;
        if len > NAME_BYTES {
            return None;
        }
        let mut bytes = [0u8; NAME_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (words[i / 8] >> ((i % 8) * 8)) as u8;
        }
        let name = String::from_utf8_lossy(&bytes[..len]).into_owned();
        Some(FlightEvent { order, kind, name, detail })
    }

    fn snapshot(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> =
            (0..RING_CAPACITY).filter_map(|i| self.read_slot(i)).collect();
        events.sort_by_key(|e| e.order);
        events
    }
}

/// One recovered event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Lane-local event number (monotone per thread; gaps mean the
    /// ring wrapped past the slot while it was being dumped).
    pub order: u64,
    /// Open, close or mark.
    pub kind: EventKind,
    /// Event name, truncated to [`NAME_BYTES`] bytes.
    pub name: String,
    /// Free payload (variant index, case id, 0 when unused).
    pub detail: u64,
}

/// Everything recovered from one thread's ring.
#[derive(Debug, Clone)]
pub struct LaneDump {
    /// The span collector's dense thread id for this lane.
    pub tid: u64,
    /// Label from [`crate::set_thread_label`], when one was registered.
    pub label: Option<String>,
    /// Total events ever written to this lane.
    pub written: u64,
    /// The recovered tail, in write order.
    pub events: Vec<FlightEvent>,
}

fn lane_for_current_thread() -> Option<Arc<Lane>> {
    MY_LANE
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot.is_none() {
                let lane = Arc::new(Lane {
                    tid: crate::current_thread_id(),
                    cursor: AtomicU64::new(0),
                    slots: (0..RING_CAPACITY).map(|_| Slot::empty()).collect(),
                });
                if let Ok(mut lanes) = LANES.lock() {
                    lanes.push(Arc::clone(&lane));
                }
                *slot = Some(lane);
            }
            slot.clone()
        })
        .ok()
        .flatten()
}

#[inline]
fn record(kind: EventKind, name: &str, detail: u64) {
    if !RECORDER_ON.load(Ordering::Relaxed) {
        return;
    }
    if let Some(lane) = lane_for_current_thread() {
        lane.write(kind, name, detail);
    }
}

/// Span sites call this on open (always, traced or not).
#[inline]
pub(crate) fn record_open(name: &str) {
    record(EventKind::Open, name, 0);
}

/// Traced span guards call this on drop.
#[inline]
pub(crate) fn record_close(name: &str) {
    record(EventKind::Close, name, 0);
}

/// Log a point event with a numeric payload. This is the hot-path
/// breadcrumb API: no allocation, no formatting — hand it a static
/// name and an index and it costs a ring write.
#[inline]
pub fn mark(name: &str, detail: u64) {
    record(EventKind::Mark, name, detail);
}

/// Turn the recorder off/on. Intended for overhead measurements and
/// the `TYTRA_FLIGHT_RECORDER=0` environment override only.
pub fn set_enabled(on: bool) {
    RECORDER_ON.store(on, Ordering::Relaxed);
}

/// Whether the recorder is on (it is, unless something turned it off).
pub fn enabled() -> bool {
    RECORDER_ON.load(Ordering::Relaxed)
}

/// Snapshot every lane's retained tail. Safe to call from any thread at
/// any time, including from a panic hook while other threads still
/// write: slots caught mid-update are skipped, never torn.
pub fn dump() -> Vec<LaneDump> {
    let lanes: Vec<Arc<Lane>> = match LANES.lock() {
        Ok(l) => l.iter().cloned().collect(),
        Err(_) => return Vec::new(),
    };
    let labels = crate::thread_labels();
    lanes
        .iter()
        .map(|lane| LaneDump {
            tid: lane.tid,
            label: labels.iter().find(|(t, _)| *t == lane.tid).map(|(_, l)| l.clone()),
            written: lane.cursor.load(Ordering::Acquire),
            events: lane.snapshot(),
        })
        .collect()
}

/// [`dump`], restricted to the calling thread's lane. `None` if this
/// thread never recorded anything.
pub fn dump_current_thread() -> Option<LaneDump> {
    let lane = MY_LANE.try_with(|cell| cell.borrow().clone()).ok().flatten()?;
    let labels = crate::thread_labels();
    Some(LaneDump {
        tid: lane.tid,
        label: labels.iter().find(|(t, _)| *t == lane.tid).map(|(_, l)| l.clone()),
        written: lane.cursor.load(Ordering::Acquire),
        events: lane.snapshot(),
    })
}

/// Render lane dumps as the post-mortem text format: one header line
/// per lane, one `#order kind name detail` line per event.
pub fn render_dump(dumps: &[LaneDump]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("== flight recorder ==\n");
    for lane in dumps {
        let label = lane.label.as_deref().map(|l| format!(" ({l})")).unwrap_or_default();
        let _ = writeln!(
            out,
            "lane {}{label}: {} event(s) retained of {} written",
            lane.tid,
            lane.events.len(),
            lane.written
        );
        for e in &lane.events {
            let _ = write!(out, "  #{:<8} {} {}", e.order, e.kind.label(), e.name);
            if e.detail != 0 {
                let _ = write!(out, "  detail={}", e.detail);
            }
            out.push('\n');
        }
    }
    out
}

static HOOK_INSTALLED: Once = Once::new();

/// Install a process panic hook that prints the flight-recorder dump to
/// stderr (and to the file named by `TYTRA_FLIGHT_DUMP`, when set)
/// after the previous hook has reported the panic itself. Idempotent;
/// chains whatever hook was installed before.
pub fn install_panic_hook() {
    HOOK_INSTALLED.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            let rendered = render_dump(&dump());
            eprintln!("{rendered}");
            if let Ok(path) = std::env::var("TYTRA_FLIGHT_DUMP") {
                if !path.is_empty() {
                    let _ = std::fs::write(&path, &rendered);
                }
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_land_in_the_current_lane_in_order() {
        let _guard = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        let (tid, dump) = std::thread::spawn(|| {
            mark("rec.alpha", 1);
            mark("rec.beta", 2);
            mark("rec.gamma", 0);
            (crate::current_thread_id(), dump_current_thread().expect("lane exists"))
        })
        .join()
        .unwrap();
        assert_eq!(dump.tid, tid);
        assert_eq!(dump.written, 3);
        let names: Vec<&str> = dump.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["rec.alpha", "rec.beta", "rec.gamma"]);
        assert_eq!(dump.events[0].detail, 1);
        assert_eq!(dump.events[2].detail, 0);
        assert!(dump.events.windows(2).all(|w| w[0].order < w[1].order));
        assert!(dump.events.iter().all(|e| e.kind == EventKind::Mark));
    }

    #[test]
    fn the_ring_keeps_only_the_tail() {
        let _guard = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        let dump = std::thread::spawn(|| {
            for i in 0..(RING_CAPACITY as u64 * 3 + 7) {
                mark("rec.wrap", i);
            }
            dump_current_thread().expect("lane exists")
        })
        .join()
        .unwrap();
        let total = RING_CAPACITY as u64 * 3 + 7;
        assert_eq!(dump.written, total);
        assert_eq!(dump.events.len(), RING_CAPACITY);
        // The retained window is exactly the last RING_CAPACITY events.
        assert_eq!(dump.events.first().unwrap().order, total - RING_CAPACITY as u64);
        assert_eq!(dump.events.last().unwrap().order, total - 1);
        assert!(dump.events.iter().all(|e| e.detail == e.order));
    }

    #[test]
    fn long_names_truncate_and_dump_renders() {
        let _guard = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        let rendered = std::thread::spawn(|| {
            mark("this.name.is.much.longer.than.the.slot", 9);
            let d = dump_current_thread().unwrap();
            let tail = d.events.last().unwrap().clone();
            assert_eq!(tail.name.len(), NAME_BYTES);
            assert_eq!(tail.name, "this.name.is.much.longer");
            render_dump(&[d])
        })
        .join()
        .unwrap();
        assert!(rendered.starts_with("== flight recorder ==\n"), "{rendered}");
        assert!(rendered.contains("detail=9"), "{rendered}");
    }

    #[test]
    fn disabling_stops_recording() {
        let _guard = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        std::thread::spawn(|| {
            mark("rec.before", 0);
            set_enabled(false);
            mark("rec.hidden", 0);
            set_enabled(true);
            mark("rec.after", 0);
            let d = dump_current_thread().unwrap();
            let names: Vec<&str> = d.events.iter().map(|e| e.name.as_str()).collect();
            assert!(names.contains(&"rec.before"));
            assert!(names.contains(&"rec.after"));
            assert!(!names.contains(&"rec.hidden"), "{names:?}");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn global_dump_sees_every_thread_lane() {
        let _guard = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        let tids: Vec<u64> = (0..3)
            .map(|w| {
                std::thread::spawn(move || {
                    mark("rec.global", w);
                    crate::current_thread_id()
                })
                .join()
                .unwrap()
            })
            .collect();
        let dumps = dump();
        for tid in tids {
            let lane = dumps.iter().find(|d| d.tid == tid).expect("lane dumped");
            assert!(lane.events.iter().any(|e| e.name == "rec.global"));
        }
    }
}
