//! Render completed spans: human tree, JSONL stream, Chrome trace JSON.
//!
//! All three renderers are pure functions over `&[SpanRecord]` (plus the
//! thread-label table), so the same drained buffer can feed any of them
//! and tests can exercise them without touching the global collector.

use crate::json::{escape, number};
use crate::{SpanRecord, Value};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Render one span per line as a standalone JSON object (JSONL): stable
/// keys `name`, `id`, `parent` (null at roots), `tid`, `start_ns`,
/// `dur_ns`, `fields`. Grep- and jq-friendly.
pub fn render_jsonl(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"id\":{},\"parent\":{},\"tid\":{},\"start_ns\":{},\"dur_ns\":{}",
            escape(&r.name),
            r.id,
            r.parent.map_or("null".to_string(), |p| p.to_string()),
            r.tid,
            r.start_ns,
            r.dur_ns,
        );
        out.push_str(",\"fields\":{");
        push_fields(&mut out, &r.fields);
        out.push_str("}}\n");
    }
    out
}

/// Render the Chrome trace-event format understood by `chrome://tracing`
/// and [Perfetto](https://ui.perfetto.dev): one complete (`"ph":"X"`)
/// event per span with microsecond timestamps, one lane per thread, and
/// a `thread_name` metadata event per labelled lane. Span fields land in
/// `args` (repeated keys keep the last value, matching JSON object
/// semantics).
pub fn render_chrome(records: &[SpanRecord], labels: &[(u64, String)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (tid, label) in labels {
        push_event_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        );
    }
    let mut ordered: Vec<&SpanRecord> = records.iter().collect();
    ordered.sort_by_key(|r| (r.start_ns, r.id));
    for r in ordered {
        push_event_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"tytra\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{",
            escape(&r.name),
            r.tid,
            r.start_ns as f64 / 1e3,
            r.dur_ns as f64 / 1e3,
        );
        push_fields(&mut out, &r.fields);
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render an indented per-thread span tree with durations and fields —
/// the quick-look sink for terminals.
pub fn render_tree(records: &[SpanRecord], labels: &[(u64, String)]) -> String {
    let mut children: HashMap<Option<u64>, Vec<&SpanRecord>> = HashMap::new();
    let known: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    let mut tids: Vec<u64> = Vec::new();
    for r in records {
        // A parent that never completed (still open at drain time) would
        // orphan its subtree; hoist such spans to the root.
        let parent = r.parent.filter(|p| known.contains(p));
        children.entry(parent).or_default().push(r);
        if !tids.contains(&r.tid) {
            tids.push(r.tid);
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|r| (r.start_ns, r.id));
    }
    tids.sort_unstable();

    let mut out = String::new();
    for tid in tids {
        let label = labels
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, l)| format!(" ({l})"))
            .unwrap_or_default();
        let _ = writeln!(out, "thread {tid}{label}");
        if let Some(roots) = children.get(&None) {
            for root in roots.iter().filter(|r| r.tid == tid) {
                render_node(&mut out, &children, root, 1);
            }
        }
    }
    out
}

fn render_node(
    out: &mut String,
    children: &HashMap<Option<u64>, Vec<&SpanRecord>>,
    node: &SpanRecord,
    depth: usize,
) {
    let indent = "  ".repeat(depth);
    let name_col = format!("{indent}{}", node.name);
    let _ = write!(out, "{name_col:<42} {:>10}", fmt_dur(node.dur_ns));
    for (k, v) in &node.fields {
        let _ = write!(out, "  {k}={v}");
    }
    out.push('\n');
    if let Some(kids) = children.get(&Some(node.id)) {
        for kid in kids.iter().filter(|r| r.tid == node.tid) {
            render_node(out, children, kid, depth + 1);
        }
    }
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn push_event_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
}

fn push_fields(out: &mut String, fields: &[(String, Value)]) {
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(k));
        match v {
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(n) => out.push_str(&number(*n)),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn sample() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: None,
                tid: 1,
                name: "root".to_string(),
                start_ns: 0,
                dur_ns: 3_000,
                fields: vec![
                    ("module".to_string(), Value::Str("sor \"q\"".to_string())),
                    ("fp".to_string(), Value::U64(0xDEAD)),
                ],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                tid: 1,
                name: "child".to_string(),
                start_ns: 500,
                dur_ns: 1_000,
                fields: vec![("hit".to_string(), Value::Bool(true))],
            },
            SpanRecord {
                id: 3,
                parent: None,
                tid: 2,
                name: "worker".to_string(),
                start_ns: 100,
                dur_ns: 2_000,
                fields: vec![("score".to_string(), Value::F64(f64::NAN))],
            },
        ]
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let out = render_jsonl(&sample());
        assert_eq!(out.lines().count(), 3);
        for line in out.lines() {
            let v = parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(v.get("name").is_some());
            assert!(v.get("fields").unwrap().as_obj().is_some());
        }
    }

    #[test]
    fn chrome_trace_is_one_valid_document() {
        let labels = vec![(2u64, "dse-worker-0".to_string())];
        let out = render_chrome(&sample(), &labels);
        let doc = parse(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata + 3 spans.
        assert_eq!(events.len(), 4);
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(meta.get("args").unwrap().get("name").unwrap().as_str(), Some("dse-worker-0"));
        for ev in &events[1..] {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("ts").unwrap().as_num().is_some());
            assert!(ev.get("dur").unwrap().as_num().is_some());
        }
        // The NaN field survived as a string, not as invalid JSON.
        let worker = events.iter().find(|e| e.get("name").unwrap().as_str() == Some("worker"));
        assert_eq!(
            worker.unwrap().get("args").unwrap().get("score"),
            Some(&Json::Str("NaN".to_string()))
        );
    }

    #[test]
    fn tree_nests_children_under_parents_per_thread() {
        let labels = vec![(2u64, "dse-worker-0".to_string())];
        let out = render_tree(&sample(), &labels);
        assert!(out.contains("thread 1\n"), "{out}");
        assert!(out.contains("thread 2 (dse-worker-0)"), "{out}");
        let root_line = out.lines().position(|l| l.trim_start().starts_with("root")).unwrap();
        let child_line = out.lines().position(|l| l.trim_start().starts_with("child")).unwrap();
        assert!(child_line > root_line);
        assert!(out.lines().nth(child_line).unwrap().starts_with("    "), "{out}");
        assert!(out.contains("hit=true"));
        assert!(out.contains("module=sor \"q\""));
    }

    #[test]
    fn orphaned_spans_are_hoisted_to_the_root() {
        let mut records = sample();
        records[1].parent = Some(999); // parent never completed
        let out = render_tree(&records, &[]);
        assert!(out.contains("child"), "{out}");
    }
}
