//! `trace_check` — validate observability artifacts produced by
//! `tybec`: Chrome trace-event files, folded flamegraph stacks and
//! Prometheus text exposition.
//!
//! ```text
//! trace_check <trace.json> [--expect <span-name>]... [--span-lanes <name>:<min>]
//! trace_check --folded <stacks.folded> [--expect <frame>]...
//! trace_check --prom <metrics.prom> [--expect <metric>]...
//! ```
//!
//! Chrome mode checks that the file parses as trace-event JSON (a
//! `traceEvents` array of objects each carrying `name`/`ph`/`pid`/`tid`,
//! with `ts`/`dur` on complete events), that every `--expect`ed span
//! name occurs at least once, and that spans named in `--span-lanes`
//! cover at least the requested number of distinct thread lanes.
//!
//! Folded mode checks the collapsed-stack grammar — every line is
//! `frame;frame;frame count` with nonempty frames and an integer count
//! — and that every `--expect`ed frame occurs in some stack.
//!
//! Prometheus mode checks the text exposition line grammar (comments,
//! `name[{labels}] value` samples), that histogram `_bucket` series
//! are cumulative and consistent with `_count`, and that every
//! `--expect`ed metric family occurs. CI runs all three over the DSE
//! smoke sweeps before uploading them as artifacts.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;
use tytra_trace::json::{parse, Json};

const USAGE: &str = "usage: trace_check <trace.json> [--expect <name>]... \
     [--span-lanes <name>:<min>] | trace_check --folded <file> [--expect <frame>]... \
     | trace_check --prom <file> [--expect <metric>]...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace_check: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    path: String,
    expects: Vec<String>,
    lane_rules: Vec<(String, usize)>,
    mode: Mode,
}

#[derive(PartialEq)]
enum Mode {
    Chrome,
    Folded,
    Prom,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut expects = Vec::new();
    let mut lane_rules = Vec::new();
    let mut mode = Mode::Chrome;
    let mut path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect" => expects.push(it.next().ok_or("--expect needs a name")?.clone()),
            "--span-lanes" => {
                let spec = it.next().ok_or("--span-lanes needs <name>:<min>")?;
                let (name, min) = spec.rsplit_once(':').ok_or("--span-lanes wants <name>:<min>")?;
                let min: usize = min.parse().map_err(|e| format!("bad lane count: {e}"))?;
                lane_rules.push((name.to_string(), min));
            }
            "--folded" => mode = Mode::Folded,
            "--prom" => mode = Mode::Prom,
            other if !other.starts_with("--") => path = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let path = path.ok_or(USAGE)?;
    if mode != Mode::Chrome && !lane_rules.is_empty() {
        return Err("--span-lanes only applies to chrome traces".to_string());
    }
    Ok(Options { path, expects, lane_rules, mode })
}

fn run(args: &[String]) -> Result<String, String> {
    let opts = parse_args(args)?;
    let src =
        std::fs::read_to_string(&opts.path).map_err(|e| format!("reading {}: {e}", opts.path))?;
    match opts.mode {
        Mode::Chrome => check_chrome(&opts, &src),
        Mode::Folded => check_folded(&opts, &src),
        Mode::Prom => check_prom(&opts, &src),
    }
}

fn check_chrome(opts: &Options, src: &str) -> Result<String, String> {
    let path = &opts.path;
    let doc = parse(src).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or(format!("{path}: no `traceEvents` array"))?;
    if events.is_empty() {
        return Err(format!("{path}: empty trace"));
    }

    let mut names = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        let ph = ev.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: missing `ph`"))?;
        for key in ["pid", "tid"] {
            ev.get(key).and_then(Json::as_num).ok_or(format!("event {i}: missing `{key}`"))?;
        }
        if ph == "X" {
            for key in ["ts", "dur"] {
                ev.get(key)
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i} ({name}): missing `{key}`"))?;
            }
            names.insert(name.to_string());
        }
    }

    for want in &opts.expects {
        if !names.contains(want) {
            return Err(format!("{path}: no `{want}` span (have: {names:?})"));
        }
    }
    for (name, min) in &opts.lane_rules {
        let lanes: BTreeSet<u64> = events
            .iter()
            .filter(|ev| ev.get("name").and_then(Json::as_str) == Some(name))
            .filter_map(|ev| ev.get("tid").and_then(Json::as_num))
            .map(|t| t as u64)
            .collect();
        if lanes.len() < *min {
            return Err(format!(
                "{path}: `{name}` spans cover {} lane(s), wanted ≥ {min}",
                lanes.len()
            ));
        }
    }

    Ok(format!(
        "{path}: ok — {} events, {} distinct complete-span names",
        events.len(),
        names.len()
    ))
}

fn check_folded(opts: &Options, src: &str) -> Result<String, String> {
    let path = &opts.path;
    let mut frames = BTreeSet::new();
    let mut stacks = 0usize;
    for (lineno, line) in src.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            return Err(format!("{path}:{n}: empty line"));
        }
        let (stack, count) =
            line.rsplit_once(' ').ok_or(format!("{path}:{n}: no `stack count` split"))?;
        count
            .parse::<u64>()
            .map_err(|_| format!("{path}:{n}: count `{count}` is not an integer"))?;
        if stack.is_empty() {
            return Err(format!("{path}:{n}: empty stack"));
        }
        for frame in stack.split(';') {
            if frame.is_empty() {
                return Err(format!("{path}:{n}: empty frame in `{stack}`"));
            }
            if frame.contains(char::is_whitespace) {
                return Err(format!("{path}:{n}: whitespace inside frame `{frame}`"));
            }
            frames.insert(frame.to_string());
        }
        stacks += 1;
    }
    if stacks == 0 {
        return Err(format!("{path}: no stacks"));
    }
    for want in &opts.expects {
        if !frames.contains(want) {
            return Err(format!("{path}: no `{want}` frame (have: {frames:?})"));
        }
    }
    Ok(format!("{path}: ok — {stacks} stacks, {} distinct frames", frames.len()))
}

fn prom_name_ok(name: &str) -> bool {
    !name.is_empty()
        && !name.as_bytes()[0].is_ascii_digit()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn check_prom(opts: &Options, src: &str) -> Result<String, String> {
    let path = &opts.path;
    // family → (bucket cumulative counts in order, +Inf count, _count value)
    let mut buckets: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut inf: BTreeMap<String, u64> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut families = BTreeSet::new();
    let mut samples = 0usize;
    for (lineno, line) in src.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) =
            line.rsplit_once(' ').ok_or(format!("{path}:{n}: no `name value` split"))?;
        let value: f64 =
            value.parse().map_err(|_| format!("{path}:{n}: value `{value}` is not a number"))?;
        let (name, labels) = match name_part.split_once('{') {
            Some((name, rest)) => {
                let labels =
                    rest.strip_suffix('}').ok_or(format!("{path}:{n}: unterminated labels"))?;
                (name, Some(labels))
            }
            None => (name_part, None),
        };
        if !prom_name_ok(name) {
            return Err(format!("{path}:{n}: bad metric name `{name}`"));
        }
        samples += 1;
        if let Some(family) = name.strip_suffix("_bucket") {
            let labels = labels.ok_or(format!("{path}:{n}: `{name}` without le label"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .ok_or(format!("{path}:{n}: `{name}` labels `{labels}` are not le=\"…\""))?;
            if le == "+Inf" {
                inf.insert(family.to_string(), value as u64);
            } else {
                le.parse::<f64>().map_err(|_| format!("{path}:{n}: bad le bound `{le}`"))?;
                buckets.entry(family.to_string()).or_default().push(value as u64);
            }
            families.insert(family.to_string());
        } else if let Some(family) = name.strip_suffix("_count") {
            counts.insert(family.to_string(), value as u64);
            families.insert(family.to_string());
        } else if let Some(family) = name.strip_suffix("_sum") {
            families.insert(family.to_string());
        } else {
            families.insert(name.to_string());
        }
    }
    if samples == 0 {
        return Err(format!("{path}: no samples"));
    }
    for (family, inf_count) in &inf {
        if counts.get(family) != Some(inf_count) {
            return Err(format!("{path}: `{family}_count` disagrees with the +Inf bucket"));
        }
    }
    for (family, series) in &buckets {
        if series.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("{path}: `{family}_bucket` series is not cumulative"));
        }
        let inf_count = *inf.get(family).ok_or(format!("{path}: `{family}` has no +Inf bucket"))?;
        if series.last().copied().unwrap_or(0) > inf_count {
            return Err(format!("{path}: `{family}` buckets exceed the +Inf bucket"));
        }
    }
    for want in &opts.expects {
        if !families.contains(want) {
            return Err(format!("{path}: no `{want}` metric (have: {families:?})"));
        }
    }
    Ok(format!("{path}: ok — {samples} samples, {} metric families", families.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn with_file(content: &str, f: impl FnOnce(&str)) {
        let path = std::env::temp_dir().join(format!(
            "trace_check_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, content).unwrap();
        f(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn folded_grammar_accepts_and_rejects() {
        with_file("a;b;c 12\nroot 3\n", |p| {
            let summary = run(&args(&["--folded", p, "--expect", "b"])).unwrap();
            assert!(summary.contains("2 stacks"), "{summary}");
            let err = run(&args(&["--folded", p, "--expect", "zz"])).unwrap_err();
            assert!(err.contains("no `zz` frame"), "{err}");
        });
        with_file("a;;c 12\n", |p| {
            assert!(run(&args(&["--folded", p])).unwrap_err().contains("empty frame"));
        });
        with_file("a;b twelve\n", |p| {
            assert!(run(&args(&["--folded", p])).unwrap_err().contains("not an integer"));
        });
        with_file("", |p| {
            assert!(run(&args(&["--folded", p])).unwrap_err().contains("no stacks"));
        });
    }

    #[test]
    fn prom_grammar_accepts_and_rejects() {
        let good = "# TYPE hits counter\nhits 3\n# TYPE ns histogram\n\
                    ns_bucket{le=\"3\"} 2\nns_bucket{le=\"7\"} 4\nns_bucket{le=\"+Inf\"} 5\n\
                    ns_sum 22\nns_count 5\n";
        with_file(good, |p| {
            let summary = run(&args(&["--prom", p, "--expect", "hits", "--expect", "ns"])).unwrap();
            assert!(summary.contains("metric families"), "{summary}");
            let err = run(&args(&["--prom", p, "--expect", "nope"])).unwrap_err();
            assert!(err.contains("no `nope` metric"), "{err}");
        });
        let decumulative = "ns_bucket{le=\"3\"} 4\nns_bucket{le=\"7\"} 2\n\
                            ns_bucket{le=\"+Inf\"} 5\nns_count 5\n";
        with_file(decumulative, |p| {
            assert!(run(&args(&["--prom", p])).unwrap_err().contains("not cumulative"));
        });
        let mismatch = "ns_bucket{le=\"+Inf\"} 5\nns_count 7\n";
        with_file(mismatch, |p| {
            assert!(run(&args(&["--prom", p])).unwrap_err().contains("disagrees"));
        });
        with_file("3bad 1\n", |p| {
            assert!(run(&args(&["--prom", p])).unwrap_err().contains("bad metric name"));
        });
    }

    #[test]
    fn real_renderers_pass_their_checkers() {
        use tytra_trace::metrics::Registry;
        let reg = Registry::new();
        reg.counter("dse.points").add(9);
        let h = reg.histogram("estimator.estimate_ns");
        for v in [5u64, 900, 40_000] {
            h.record(v);
        }
        with_file(&tytra_trace::prometheus::render_prometheus(&reg.snapshot()), |p| {
            run(&args(&[
                "--prom",
                p,
                "--expect",
                "dse_points",
                "--expect",
                "estimator_estimate_ns",
            ]))
            .unwrap();
        });

        let records = vec![
            tytra_trace::SpanRecord {
                id: 1,
                parent: None,
                tid: 1,
                name: "tybec.dse".into(),
                start_ns: 0,
                dur_ns: 100,
                fields: vec![],
            },
            tytra_trace::SpanRecord {
                id: 2,
                parent: Some(1),
                tid: 1,
                name: "estimator.validate".into(),
                start_ns: 10,
                dur_ns: 50,
                fields: vec![],
            },
        ];
        with_file(&tytra_trace::profile::render_folded(&records), |p| {
            run(&args(&["--folded", p, "--expect", "estimator.validate"])).unwrap();
        });
    }
}
