//! `trace_check` — validate a Chrome trace-event file produced by
//! `tybec --trace out.json --trace-format chrome`.
//!
//! ```text
//! trace_check <trace.json> [--expect <span-name>]... [--span-lanes <name>:<min>]
//! ```
//!
//! Checks that the file parses as trace-event JSON (a `traceEvents`
//! array of objects each carrying `name`/`ph`/`pid`/`tid`, with
//! `ts`/`dur` on complete events), that every `--expect`ed span name
//! occurs at least once, and that spans named in `--span-lanes` cover at
//! least the requested number of distinct thread lanes. CI runs this
//! over the DSE smoke trace before uploading it as an artifact.

use std::collections::BTreeSet;
use std::process::ExitCode;
use tytra_trace::json::{parse, Json};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace_check: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let path = args.iter().find(|a| !a.starts_with("--")).ok_or(
        "usage: trace_check <trace.json> [--expect <name>]... [--span-lanes <name>:<min>]",
    )?;
    let mut expects = Vec::new();
    let mut lane_rules = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect" => expects.push(it.next().ok_or("--expect needs a span name")?.clone()),
            "--span-lanes" => {
                let spec = it.next().ok_or("--span-lanes needs <name>:<min>")?;
                let (name, min) = spec.rsplit_once(':').ok_or("--span-lanes wants <name>:<min>")?;
                let min: usize = min.parse().map_err(|e| format!("bad lane count: {e}"))?;
                lane_rules.push((name.to_string(), min));
            }
            _ => {}
        }
    }

    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&src).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or(format!("{path}: no `traceEvents` array"))?;
    if events.is_empty() {
        return Err(format!("{path}: empty trace"));
    }

    let mut names = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        let ph = ev.get("ph").and_then(Json::as_str).ok_or(format!("event {i}: missing `ph`"))?;
        for key in ["pid", "tid"] {
            ev.get(key).and_then(Json::as_num).ok_or(format!("event {i}: missing `{key}`"))?;
        }
        if ph == "X" {
            for key in ["ts", "dur"] {
                ev.get(key)
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i} ({name}): missing `{key}`"))?;
            }
            names.insert(name.to_string());
        }
    }

    for want in &expects {
        if !names.contains(want) {
            return Err(format!("{path}: no `{want}` span (have: {names:?})"));
        }
    }
    for (name, min) in &lane_rules {
        let lanes: BTreeSet<u64> = events
            .iter()
            .filter(|ev| ev.get("name").and_then(Json::as_str) == Some(name))
            .filter_map(|ev| ev.get("tid").and_then(Json::as_num))
            .map(|t| t as u64)
            .collect();
        if lanes.len() < *min {
            return Err(format!(
                "{path}: `{name}` spans cover {} lane(s), wanted ≥ {min}",
                lanes.len()
            ));
        }
    }

    Ok(format!(
        "{path}: ok — {} events, {} distinct complete-span names",
        events.len(),
        names.len()
    ))
}
