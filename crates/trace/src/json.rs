//! Minimal JSON writing and reading support for the trace sinks and the
//! `tybec serve` wire protocol.
//!
//! The workspace has no serde; the sinks hand-roll their output and the
//! only guarantee they need from this module is that [`escape`] yields a
//! valid JSON string for *any* Rust string, and that [`parse`] accepts
//! exactly (a superset of) what the sinks emit — enough to validate a
//! trace file in CI ([`trace_check`](../bin/trace_check.rs)) and in
//! property tests without an external JSON library.
//!
//! Because `tybec serve` feeds this parser *untrusted network input*,
//! it is strict where leniency would be a liability: trailing bytes
//! after the top-level value are rejected, recursion is capped at
//! [`MAX_DEPTH`] (a 10 kB `[[[[…` bomb must produce a structured error,
//! not a stack overflow), and every error carries the byte offset it
//! was detected at ([`JsonError`]) so servers can map it to a span.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Deepest array/object nesting [`parse`] accepts. Far beyond anything
/// the sinks emit (span trees are a few levels), and small enough that
/// the recursive-descent parser cannot be driven to stack exhaustion by
/// adversarial input.
pub const MAX_DEPTH: usize = 64;

/// A parse failure: what went wrong and the byte offset where it was
/// detected. `Display` renders as `"{message} at byte {offset}"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the source where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn new(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError { offset, message: message.into() }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Escape `s` as the *contents* of a JSON string literal (no quotes).
/// `"` and `\` are escaped, control characters become `\u00XX`, and
/// everything else passes through as UTF-8 (valid per RFC 8259).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value. JSON has no NaN/Infinity, so
/// non-finite values degrade to strings.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (key order is not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one complete JSON document. Returns a message with a byte
/// offset on malformed input or trailing garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    parse_spanned(src).map_err(|e| e.to_string())
}

/// [`parse`] with the structured [`JsonError`] (offset preserved, for
/// callers that map parse failures to spans — the `tybec serve` wire
/// protocol does).
pub fn parse_spanned(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::new(pos, "trailing data"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::new(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    if depth >= MAX_DEPTH {
        return Err(JsonError::new(*pos, format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    match bytes.get(*pos) {
        None => Err(JsonError::new(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(src, pos, "null", Json::Null),
        Some(b't') => parse_lit(src, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(src, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(src, bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::new(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(src, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(src, bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(JsonError::new(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(src, bytes, pos),
        Some(&b) => Err(JsonError::new(*pos, format!("unexpected byte `{}`", b as char))),
    }
}

fn parse_lit(src: &str, pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if src[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::new(*pos, "bad literal"))
    }
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    src[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|e| JsonError::new(start, format!("bad number: {e}")))
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let rest = &src[*pos..];
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err(JsonError::new(*pos, "unterminated string")),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(out);
            }
            Some((_, '\\')) => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(src, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: require the low half.
                            if !src[*pos + 1..].starts_with("\\u") {
                                return Err(JsonError::new(*pos, "lone surrogate"));
                            }
                            let low = parse_hex4(src, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(JsonError::new(*pos, "bad surrogate pair"));
                            }
                            *pos += 6;
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(c).expect("valid supplementary char"));
                        } else {
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(JsonError::new(*pos, "lone surrogate")),
                            }
                        }
                    }
                    _ => return Err(JsonError::new(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some((_, c)) if (c as u32) < 0x20 => {
                return Err(JsonError::new(*pos, "raw control character"));
            }
            Some((_, c)) => {
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(src: &str, at: usize) -> Result<u32, JsonError> {
    src.get(at..at + 4)
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| JsonError::new(at, "bad \\u escape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("n\nr\rt\t"), "n\\nr\\rt\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("日本 ✓"), "日本 ✓");
    }

    #[test]
    fn parse_round_trips_escaped_strings() {
        for s in ["", "plain", "a\"b\\c", "n\nr\rt\t\u{1}", "日本 ✓", "𝄞 clef"] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(parse(&doc), Ok(Json::Str(s.to_string())), "{doc}");
        }
    }

    #[test]
    fn parse_handles_nested_documents() {
        let doc = r#"{"a": [1, -2.5, 1e3, true, null], "b": {"c": "\u0041\ud834\udd1e"}}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[2].as_num(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("A𝄞"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "01x", "[1] garbage", "\"\\u12\""]
        {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage_with_its_offset() {
        let err = parse_spanned("{\"a\": 1} {").unwrap_err();
        assert_eq!(err.offset, 9);
        assert_eq!(err.message, "trailing data");
        assert_eq!(err.to_string(), "trailing data at byte 9");
        // A second complete document is still trailing garbage (JSONL
        // framing is one document per line, enforced by the caller).
        assert!(parse("1 2").is_err());
        assert!(parse("[1][2]").is_err());
    }

    #[test]
    fn parse_accepts_nesting_up_to_the_depth_limit() {
        let deep = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&deep).is_ok(), "depth {MAX_DEPTH} must parse");
    }

    #[test]
    fn parse_rejects_a_nesting_bomb_with_a_structured_error() {
        // One past the limit, and an adversarial 64 kB bomb: both must
        // come back as errors (never a stack overflow).
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = parse_spanned(&over).unwrap_err();
        assert!(err.message.contains("nesting deeper than"), "{err}");
        assert_eq!(err.offset, MAX_DEPTH);

        let bomb = "[".repeat(64 * 1024);
        assert!(parse_spanned(&bomb).is_err());
        let obj_bomb = "{\"k\":".repeat(64 * 1024);
        assert!(parse_spanned(&obj_bomb).is_err());
    }

    #[test]
    fn spanned_errors_carry_the_detection_offset() {
        let err = parse_spanned("{\"a\" 1}").unwrap_err();
        assert_eq!(err.offset, 5);
        assert_eq!(err.message, "expected `:`");
        let err = parse_spanned("").unwrap_err();
        assert_eq!(err.offset, 0);
        assert_eq!(err.message, "unexpected end of input");
    }

    #[test]
    fn number_degrades_non_finite_values() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "\"NaN\"");
        assert_eq!(number(f64::INFINITY), "\"inf\"");
        assert!(parse(&number(f64::NEG_INFINITY)).is_ok());
    }
}
