//! Pins the flight-recorder steady-state cost contract: with the
//! recorder on (the default) and tracing off, a span site allocates
//! nothing. The ring is allocated once per thread on first use; after
//! that warm-up, open events are pure atomic stores.
//!
//! This file holds exactly one test so no sibling test can allocate
//! concurrently through the process-global counting allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn recorder_on_tracing_off_span_site_allocates_nothing() {
    tytra_trace::set_enabled(false);
    assert!(tytra_trace::recorder::enabled(), "recorder must be on by default");

    // Warm up: first event on this thread registers the lane (one-off
    // ring allocation), and the guard type settles into the cache.
    {
        let _s = tytra_trace::span("alloc.warmup");
    }
    tytra_trace::recorder::mark("alloc.warmup", 0);

    // The libtest harness owns other live threads that may allocate a
    // handful of times while we measure; a per-site allocation would
    // show up ≥10,000 times in *every* run, so the minimum over a few
    // runs isolates the span site from that ambient noise.
    let min_allocs = (0..5)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            for i in 0..10_000u64 {
                let mut s = tytra_trace::span("estimator.bound");
                // Disabled guards must skip field conversion work too.
                s.record("fp", i);
                drop(s);
                tytra_trace::recorder::mark("dse.variant", i);
            }
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min_allocs, 0,
        "recorder-on / tracing-off span site allocated {min_allocs} time(s) over 10k iterations"
    );

    // Sanity: the events really were recorded, not skipped.
    let lane = tytra_trace::recorder::dump_current_thread().expect("lane registered");
    assert!(lane.written >= 100_000);
    assert!(lane.events.iter().any(|e| e.name == "estimator.bound"));
    assert!(lane.events.iter().any(|e| e.name == "dse.variant"));
}
