//! Property tests for the trace emitters: whatever span names, thread
//! labels and field values instrumentation throws at them, the JSONL
//! and Chrome sinks must produce output our own strict JSON parser
//! accepts — escaping bugs show up here long before Perfetto sees them.

use proptest::prelude::*;
use tytra_trace::sink::{render_chrome, render_jsonl, render_tree};
use tytra_trace::{json, SpanRecord, Value};

/// A record built from fuzzed parts. Control characters, quotes and
/// backslashes in names/keys are the interesting cases; f64s are drawn
/// from raw bits so NaN and the infinities appear.
fn record(id: u64, name: String, key: String, sval: String, bits: u64, tid: u64) -> SpanRecord {
    SpanRecord {
        id,
        parent: if id % 3 == 0 { None } else { Some(id / 2) },
        tid,
        name,
        start_ns: id.wrapping_mul(17),
        dur_ns: id.wrapping_mul(3) % 1000,
        fields: vec![
            (key, Value::Str(sval)),
            ("f".to_string(), Value::F64(f64::from_bits(bits))),
            ("n".to_string(), Value::U64(id)),
            ("b".to_string(), Value::Bool(id % 2 == 0)),
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn jsonl_lines_are_always_valid_json(
        name in ".{0,40}",
        key in ".{0,12}",
        sval in ".{0,40}",
        bits in proptest::arbitrary::any::<u64>(),
        id in 1u64..1000,
    ) {
        let recs = [record(id, name, key, sval, bits, id % 4)];
        let out = render_jsonl(&recs);
        for line in out.lines() {
            let v = json::parse(line);
            prop_assert!(v.is_ok(), "unparseable JSONL line {line:?}: {:?}", v.err());
        }
    }

    #[test]
    fn chrome_trace_is_always_valid_json(
        name in ".{0,40}",
        label in ".{0,24}",
        key in ".{0,12}",
        sval in ".{0,40}",
        bits in proptest::arbitrary::any::<u64>(),
        id in 1u64..1000,
    ) {
        let recs = [
            record(id, name.clone(), key.clone(), sval.clone(), bits, 0),
            record(id + 1, name, key, sval, bits, 1),
        ];
        let labels = [(0u64, label)];
        let out = render_chrome(&recs, &labels);
        let doc = json::parse(&out);
        prop_assert!(doc.is_ok(), "unparseable chrome trace: {:?}\n{out}", doc.err());
        let doc = doc.unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr());
        prop_assert!(events.is_some(), "traceEvents missing:\n{out}");
        // 1 thread_name metadata event + 2 complete events.
        prop_assert_eq!(events.unwrap().len(), 3);
    }

    #[test]
    fn tree_renderer_never_panics(
        name in ".{0,40}",
        id in 1u64..1000,
        bits in proptest::arbitrary::any::<u64>(),
    ) {
        // Parent ids may dangle (id/2 is usually not in the set): the
        // tree must hoist orphans, not loop or panic.
        let recs = [
            record(id, name.clone(), "k".into(), "v".into(), bits, 0),
            record(id + 7, name, "k".into(), "v".into(), bits, 1),
        ];
        let out = render_tree(&recs, &[(0, "main".to_string())]);
        prop_assert!(!out.is_empty());
    }
}
