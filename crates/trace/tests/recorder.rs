//! Flight-recorder concurrency properties: concurrent writers (and a
//! racing reader) never tear a record, and every dump is well-formed.
//!
//! Torn records are detectable by construction: each writer thread only
//! ever writes events whose name is a fixed function of the detail
//! payload, so any recovered event whose name does not match its detail
//! could only come from interleaved half-writes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use tytra_trace::recorder::{self, EventKind, LaneDump, NAME_BYTES, RING_CAPACITY};

/// The fixed name↔detail pairing writers use; a torn slot would pair a
/// name with the wrong detail.
fn name_for(detail: u64) -> &'static str {
    match detail % 4 {
        0 => "rec.prop.alpha",
        1 => "rec.prop.beta.longer",
        2 => "rec.prop.g",
        _ => "rec.prop.delta.much.longer.than.slot",
    }
}

fn expected_name(detail: u64) -> String {
    name_for(detail).chars().take(NAME_BYTES).collect()
}

fn assert_well_formed(dump: &LaneDump) {
    assert!(dump.events.len() <= RING_CAPACITY, "over capacity: {}", dump.events.len());
    for w in dump.events.windows(2) {
        assert!(w[0].order < w[1].order, "order not strictly increasing: {w:?}");
    }
    for e in &dump.events {
        assert!(e.order < dump.written, "order {} beyond written {}", e.order, dump.written);
        assert!(e.name.len() <= NAME_BYTES);
    }
}

fn assert_untorn(dump: &LaneDump) {
    for e in dump.events.iter().filter(|e| e.name.starts_with("rec.prop")) {
        assert_eq!(e.name, expected_name(e.detail), "torn record: {e:?}");
        assert_eq!(e.kind, EventKind::Mark, "torn kind: {e:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N writers hammer their lanes while this thread dumps
    /// concurrently; every recovered `rec.prop` mark must pair name and
    /// detail correctly, in every dump taken at any point.
    #[test]
    fn concurrent_writers_never_tear_records(
        writers in 1usize..4,
        events_per_writer in 1u64..2_000,
        seed in any::<u64>(),
    ) {
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let base = seed.wrapping_add(w as u64);
                    s.spawn(move || {
                        for i in 0..events_per_writer {
                            recorder::mark(name_for(base.wrapping_add(i)), base.wrapping_add(i));
                        }
                    })
                })
                .collect();
            let done_flag = Arc::clone(&done);
            let reader = s.spawn(move || {
                while !done_flag.load(Ordering::Relaxed) {
                    for lane in recorder::dump() {
                        assert_well_formed(&lane);
                        assert_untorn(&lane);
                    }
                }
            });
            for h in handles {
                h.join().expect("writer panicked");
            }
            done.store(true, Ordering::Relaxed);
            reader.join().expect("reader panicked");
        });
        // Steady state after the race: one more full check.
        for lane in recorder::dump() {
            assert_well_formed(&lane);
            assert_untorn(&lane);
        }
    }
}

#[test]
fn dumps_taken_mid_write_are_always_well_formed() {
    // A tight, deterministic version of the property above: one writer
    // wraps the ring many times while this thread dumps continuously.
    let writer = std::thread::spawn(|| {
        for i in 0..(RING_CAPACITY as u64 * 20) {
            recorder::mark(name_for(i), i);
        }
        recorder::dump_current_thread().expect("writer lane exists").tid
    });
    for _ in 0..200 {
        for lane in recorder::dump() {
            assert_well_formed(&lane);
            assert_untorn(&lane);
        }
    }
    let tid = writer.join().unwrap();
    let final_dump = recorder::dump();
    let lane = final_dump.iter().find(|l| l.tid == tid).expect("writer lane present");
    assert_eq!(lane.written, RING_CAPACITY as u64 * 20);
    assert_eq!(lane.events.len(), RING_CAPACITY);
    assert_eq!(lane.events.last().unwrap().order, lane.written - 1);
    assert_untorn(lane);
}
