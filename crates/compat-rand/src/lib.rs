//! Offline stand-in for the `rand` crate.
//!
//! The build environment is hermetic (no crates.io access), so this local
//! package provides the small slice of the `rand` 0.10 API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and the
//! [`RngExt`] sampling methods. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic across platforms, which is all the
//! simulator's reproducibility contract (DESIGN.md §6) requires.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256++ (small, fast, and more
    /// than adequate for test-data generation and jitter modelling).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from an RNG (`random()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled (`random_range(lo..hi)`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range. Panics on an empty range, like the
    /// real crate.
    fn sample(&self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample(&self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// The sampling extension methods, mirroring `rand::RngExt`.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniformly random value from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: u64 = a.random();
        let vb: u64 = b.random();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: u64 = c.random();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(0u64..10);
            assert!(v < 10);
            let f = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.random_range(-8i64..=8);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
