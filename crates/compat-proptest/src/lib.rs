//! Offline stand-in for the `proptest` crate.
//!
//! The build environment is hermetic (no crates.io access), so this local
//! package re-implements the slice of proptest the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, range and tuple strategies, regex-subset
//! string strategies, [`collection::vec`], [`option::of`], [`Just`],
//! [`any`], and the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`]
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * no shrinking — a failing case reports its assertion message only;
//! * generation is driven by a deterministic per-test RNG (seeded from
//!   the test name), so failures are reproducible by re-running the test;
//! * string strategies support the regex subset the tests use
//!   (`.`/char-class atoms with `{a,b}`-style quantifiers), generating
//!   printable ASCII.

pub mod strategy;

pub mod test_runner;

/// `proptest::collection` — strategies over containers.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification accepted by [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies over `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(inner)`: `None` about a quarter of the time,
    /// like the real crate's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// `proptest::arbitrary` — the [`any`] entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite full-range-ish doubles; tests use these as data, not
            // as bit-pattern fuzz.
            let mag = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let scale = 10f64.powi((rng.next_u64() % 13) as i32 - 6);
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            sign * mag * scale
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `prop_oneof![a, b, c]` — uniform choice among strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// `prop_assert!(cond, ...)` — asserts within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!(a, b, ...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!(a, b, ...)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 1u64..10, y in -4i64..=4, f in -1.5f64..1.5) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((-1.5..1.5).contains(&f), "{f}");
        }

        #[test]
        fn oneof_maps_and_filters(
            v in prop_oneof![
                Just(0i64),
                (1i64..5).prop_filter("nonzero", |x| *x != 0).prop_map(|x| x * 10),
            ],
        ) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }

        #[test]
        fn vec_and_option(
            xs in crate::collection::vec(0u32..7, 2..5),
            o in crate::option::of(Just(9u8)),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 7));
            prop_assert!(o.is_none() || o == Some(9));
        }

        #[test]
        fn regex_subset_strings(s in "[a-c0-1]{2,4}", t in ".{0,10}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| "abc01".contains(c)), "{s}");
            prop_assert!(t.len() <= 10);
        }

        #[test]
        fn tuples_compose(
            (a, b) in (0u8..4, crate::collection::vec(any::<bool>(), 1..3)),
        ) {
            prop_assert!(a < 4 && !b.is_empty());
        }
    }

    #[test]
    fn recursion_is_bounded() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_test("recursion");
        for _ in 0..200 {
            let t = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4, "depth {}", depth(&t));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strat = crate::collection::vec(0u64..1000, 3..9);
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        for _ in 0..50 {
            assert_eq!(
                crate::strategy::Strategy::generate(&strat, &mut a),
                crate::strategy::Strategy::generate(&strat, &mut b)
            );
        }
    }
}
