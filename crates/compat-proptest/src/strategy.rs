//! The [`Strategy`] trait, its combinators, and primitive strategies
//! (ranges, tuples, regex-subset string patterns).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, mirroring the
/// parts of proptest's trait the workspace uses.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`, resampling otherwise. `whence`
    /// names the predicate in the panic raised if resampling stalls.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy for depth-`d` values into one for depth `d + 1`.
    /// `depth` bounds nesting; the size-tuning parameters of the real
    /// crate are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            current = Union::new(vec![base.clone(), recurse(current).boxed()]).boxed();
        }
        current
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies sharing a value type; backs
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the candidate strategies (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union { options: self.options.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}): predicate rejected 10000 consecutive samples", self.whence);
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

// ---------------------------------------------------------------------
// Regex-subset string strategies: `"pattern" : Strategy<Value = String>`.
// Supported syntax — the subset the workspace's tests use: atoms `.`
// (any printable ASCII), `[...]` character classes with ranges and
// escapes, literal/escaped characters; quantifiers `{n}`, `{a,b}`, `*`,
// `+`, `?` (starred forms capped at 8 repeats).
// ---------------------------------------------------------------------

enum Atom {
    /// `.` — printable ASCII (0x20..=0x7E).
    Any,
    /// `[...]` class or single literal, expanded to its members.
    Set(Vec<char>),
}

struct Unit {
    atom: Atom,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_pattern(pat: &str) -> Vec<Unit> {
    let chars: Vec<char> = pat.chars().collect();
    let len = chars.len();
    let mut i = 0;
    let mut units = Vec::new();
    while i < len {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                assert!(i < len && chars[i] != '^', "negated classes unsupported: {pat}");
                let mut set = Vec::new();
                while i < len && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        let e = unescape(chars[i]);
                        i += 1;
                        e
                    } else {
                        let c = chars[i];
                        i += 1;
                        c
                    };
                    if i + 1 < len && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1; // '-'
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            let e = unescape(chars[i]);
                            i += 1;
                            e
                        } else {
                            let h = chars[i];
                            i += 1;
                            h
                        };
                        assert!(c <= hi, "inverted class range in {pat}");
                        for x in c as u32..=hi as u32 {
                            set.push(char::from_u32(x).expect("valid range char"));
                        }
                    } else {
                        set.push(c);
                    }
                }
                assert!(i < len, "unterminated class in {pat}");
                i += 1; // ']'
                Atom::Set(set)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                Atom::Set(vec![c])
            }
            other => {
                i += 1;
                Atom::Set(vec![other])
            }
        };
        let (min, max) = if i < len {
            match chars[i] {
                '{' => {
                    i += 1;
                    let mut lo = 0usize;
                    while chars[i].is_ascii_digit() {
                        lo = lo * 10 + chars[i] as usize - '0' as usize;
                        i += 1;
                    }
                    let hi = if chars[i] == ',' {
                        i += 1;
                        let mut h = 0usize;
                        while chars[i].is_ascii_digit() {
                            h = h * 10 + chars[i] as usize - '0' as usize;
                            i += 1;
                        }
                        h
                    } else {
                        lo
                    };
                    assert_eq!(chars[i], '}', "bad quantifier in {pat}");
                    i += 1;
                    (lo, hi)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        units.push(Unit { atom, min, max });
    }
    units
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let units = parse_pattern(self);
        let mut out = String::new();
        for u in &units {
            let n = rng.usize_in(u.min, u.max);
            for _ in 0..n {
                out.push(match &u.atom {
                    Atom::Any => (0x20 + (rng.next_u64() % 0x5F) as u8) as char,
                    Atom::Set(set) => set[(rng.next_u64() as usize) % set.len()],
                });
            }
        }
        out
    }
}
