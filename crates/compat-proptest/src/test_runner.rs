//! Test configuration and the deterministic RNG driving generation.

/// Subset of `proptest::test_runner::Config` — only the knob our tests
/// set. Re-exported from the prelude as `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Config {
    /// `ProptestConfig::with_cases(n)`.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // The real crate defaults to 256; the stub keeps the suite quick
        // while still exercising a meaningful sample.
        Config { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeded from the test's fully
/// qualified name, so every run of a given test sees the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test (FNV-1a hash of the name as seed).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (both inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform fraction in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
