//! Quickstart: build a tiny streaming kernel with the IR builder, cost
//! it on the Stratix-V target, and print the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::ir::{MemForm, ModuleBuilder, Opcode, ParKind, ScalarType};

fn main() {
    let t = ScalarType::UInt(32);

    // A 1-D three-point smoothing stencil:
    //   y[i] = (x[i-1] + 2*x[i] + x[i+1]) / 4
    let mut b = ModuleBuilder::new("smooth3");
    b.global_input("x", t, 1 << 20);
    b.global_output("y", t, 1 << 20);
    {
        let f = b.function("f0", ParKind::Pipe);
        f.input("x", t);
        f.output("y", t);
        let left = f.offset("x", t, -1);
        let right = f.offset("x", t, 1);
        let x = f.arg("x");
        let centre = f.instr(Opcode::Shl, t, vec![x, f.imm(1)]);
        let side = f.instr(Opcode::Add, t, vec![left, right]);
        let sum = f.instr(Opcode::Add, t, vec![centre, side]);
        let avg = f.instr(Opcode::Shr, t, vec![sum, f.imm(2)]);
        f.write_out("y", avg);
    }
    b.main_calls("f0");
    b.ndrange(&[1 << 20]).nki(100).form(MemForm::B);
    let module = b.finish().expect("the builder produces valid IR");

    // The textual IR round-trips, so you can also save/load .tirl files.
    println!("--- TyTra-IR ---\n{}", tytra::ir::print(&module));

    // Cost it.
    let device = stratix_v_gsd8();
    let report = estimate(&module, &device).expect("cost model runs");
    println!("--- cost report ---\n{report}");

    println!(
        "takeaway: one variant costed in microseconds — fast enough to sweep \
         thousands of design points (see examples/sor_design_space.rs)."
    );
}
