//! Load a user-supplied `.tirl` design (the shipped Fig-12-shaped SOR
//! source), validate it, cost it, and emit checked Verilog plus the
//! MaxJ integration wrapper — the full `tybec` path as a library call.
//!
//! ```sh
//! cargo run --release --example custom_kernel_tirl
//! ```

use tytra::codegen::{check, emit_design, emit_maxj_wrapper};
use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;

fn main() {
    let path = "assets/sor_c2.tirl";
    let src = std::fs::read_to_string(path).expect("asset ships with the repo");
    let module = tytra::ir::parse(&src).expect("asset is valid TyTra-IR");
    println!("parsed `{}` from {path}", module.name);

    let tree = tytra::ir::config_tree::extract(&module).expect("supported configuration");
    println!("configuration ({:?}, {} lane(s)):\n{}", tree.class, tree.lanes, tree.root.outline());

    let dev = stratix_v_gsd8();
    let report = estimate(&module, &dev).expect("cost model");
    print!("{report}");

    let hdl = emit_design(&module, &dev).expect("codegen");
    check(&hdl).expect("emitted Verilog passes the structural checker");
    let out = "target/sor_c2.v";
    std::fs::write(out, &hdl).expect("write HDL");
    println!("wrote {} lines of checked Verilog to {out}", hdl.lines().count());

    let wrapper = emit_maxj_wrapper(&module);
    println!("--- MaxJ integration wrapper (Fig 16) ---\n{wrapper}");
}
