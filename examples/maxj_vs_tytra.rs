//! The §VII case study: CPU-only vs the conventional-HLS port
//! (`fpga-maxJ`) vs the cost-model-guided variant (`fpga-tytra`) across
//! grid sizes — the data behind the paper's Figs 17 and 18.
//!
//! ```sh
//! cargo run --release --example maxj_vs_tytra
//! ```

use tytra::device::stratix_v_gsd8;
use tytra::hls_baseline::case_study;

fn main() {
    let dev = stratix_v_gsd8();
    let points = case_study(&[24, 48, 96, 144, 192], 1000, &dev).expect("case study runs");

    println!("SOR, 1000 kernel iterations, {}\n", dev.name);
    println!(
        "{:>5} | {:>8} {:>10} {:>11} | {:>8} {:>10} {:>11}",
        "side", "cpu", "fpga-maxJ", "fpga-tytra", "cpu", "fpga-maxJ", "fpga-tytra"
    );
    println!("{:>5} | {:^32} | {:^32}", "", "runtime (normalised)", "delta energy (normalised)");
    println!("{}", "-".repeat(75));
    for p in &points {
        let (rc, rm, rt) = p.runtime_normalized();
        let (ec, em, et) = p.energy_normalized();
        println!(
            "{:>5} | {:>8.2} {:>10.2} {:>11.2} | {:>8.2} {:>10.2} {:>11.2}",
            p.side, rc, rm, rt, ec, em, et
        );
    }

    let best_rt = points.iter().map(|p| p.maxj_s / p.tytra_s).fold(0.0f64, f64::max);
    let best_cpu = points.iter().map(|p| p.cpu_s / p.tytra_s).fold(0.0f64, f64::max);
    let best_e = points.iter().map(|p| p.cpu_j / p.tytra_j).fold(0.0f64, f64::max);
    println!(
        "\nfpga-tytra: up to {best_rt:.1}x faster than fpga-maxJ (paper: 3.9x), \
         {best_cpu:.1}x faster than cpu (paper: 2.6x),\n\
         and up to {best_e:.1}x more power-efficient than cpu (paper: 11x)."
    );
    println!(
        "Note the reversal at 24³ — per-stream overheads of the 4-lane variant \
         dominate small grids, exactly as §VII reports."
    );
}
