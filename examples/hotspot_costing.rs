//! Estimate-vs-actual on the Rodinia Hotspot kernel — one row of the
//! paper's Table II, regenerated end to end: lower the kernel, run the
//! cost model, then run the virtual toolchain and the cycle simulator
//! and compare.
//!
//! ```sh
//! cargo run --release --example hotspot_costing
//! ```

use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::kernels::{EvalKernel, Hotspot};
use tytra::sim::{run_application, synthesize};
use tytra::transform::Variant;

fn main() {
    let hotspot = Hotspot::default(); // 512×512 floorplan grid
    let dev = stratix_v_gsd8();
    let module = hotspot.lower_variant(&Variant::baseline()).expect("lowers");

    let est = estimate(&module, &dev).expect("cost model");
    let synth = synthesize(&module, &dev).expect("virtual toolchain");
    let run = run_application(&module, &dev).expect("cycle simulation");

    println!(
        "Hotspot ({} work-items, {} instructions per PE)",
        module.meta.global_size(),
        est.params.sched.ni
    );
    println!("  estimated: {}", est.resources.total);
    println!("  actual   : {}", synth.resources);
    let e = est.resources.total.pct_error_vs(&synth.resources);
    println!(
        "  % error  : ALUT {:+.1}  REG {:+.1}  BRAM {:+.1}  DSP {:+.1}",
        e[0], e[1], e[2], e[3]
    );
    println!(
        "  CPKI     : est {:.0} vs simulated {} ({:+.2} %)",
        est.throughput.cpki,
        run.cpki(),
        (est.throughput.cpki - run.cpki() as f64) / run.cpki() as f64 * 100.0
    );
    println!(
        "  BRAM note: the ±512-row stencil window books (2·512+1)×32 = {} bits\n\
         \x20            estimated vs 2·512×32 = {} bits synthesised — the same\n\
         \x20            off-by-one-element the paper's Table II shows for SOR.",
        est.resources.breakdown.offset_buffers.bram_bits, synth.resources.bram_bits
    );
    println!("  limiter  : {} — {}", est.limiter, est.limiter.tuning_hint());
}
