//! LavaMD accuracy + semantics check: the Table II row for the
//! molecular-dynamics kernel, plus a functional validation that the
//! lowered hardware datapath computes exactly what the reference CPU
//! code computes.
//!
//! ```sh
//! cargo run --release --example lavamd_accuracy
//! ```

use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::kernels::{EvalKernel, LavaMd};
use tytra::sim::{execute_module, synthesize, ExecInputs};
use tytra::transform::Variant;

fn main() {
    // Small particle count so the functional check runs instantly.
    let md = LavaMd { n_particles: 4096, nki: 10 };
    let dev = stratix_v_gsd8();
    let module = md.lower_variant(&Variant::baseline()).expect("lowers");

    // 1. Table II style estimate-vs-actual.
    let est = estimate(&module, &dev).expect("cost model");
    let synth = synthesize(&module, &dev).expect("virtual toolchain");
    println!("LavaMD estimate: {}", est.resources.total);
    println!("LavaMD actual  : {}", synth.resources);
    println!(
        "DSP story      : {} estimated → {} after the toolchain pairs 18-bit\n\
         \x20                products (Table II: 26 → 23, a −13 % estimate error)",
        est.resources.total.dsps, synth.resources.dsps
    );

    // 2. Functional validation: lowered datapath ≡ reference kernel.
    let workload = md.workload();
    let n = md.geometry().size() as usize;
    let mut inputs = ExecInputs::default();
    for (name, data) in &workload {
        inputs.set(name.clone(), data.clone());
    }
    let hw = execute_module(&module, &inputs, n).expect("interprets");
    let (sw, sw_reds) = md.reference(&workload);
    let mut mismatches = 0usize;
    for (name, arr) in &sw {
        let h = &hw.arrays[name];
        mismatches += arr.iter().zip(h).filter(|(a, b)| a != b).count();
    }
    println!("functional     : {} outputs × {n} items compared, {mismatches} mismatches", sw.len());
    assert_eq!(mismatches, 0, "hardware datapath must equal the reference");
    println!(
        "reduction      : potAcc = {} (hardware) vs {} (reference)",
        hw.reductions["potAcc"], sw_reds["potAcc"]
    );
    println!("bottleneck     : {}", est.limiter);
}
