//! The paper's core workflow on the SOR kernel: generate design
//! variants by type transformation, cost all of them, print the
//! Fig-15-style wall table, and let the guided tuner walk to the best
//! point.
//!
//! ```sh
//! cargo run --release --example sor_design_space
//! ```

use tytra::device::stratix_v_gsd8;
use tytra::dse::{explore, report, select_best, tune, ExplorationConfig};
use tytra::ir::MemForm;
use tytra::kernels::Sor;
use tytra::transform::Variant;

fn main() {
    let sor = Sor::cubic(96, 1000);
    let dev = stratix_v_gsd8();

    // 1. Lane sweep — how utilisation and throughput scale (Fig 15).
    println!("== SOR lane sweep on {} ==", dev.name);
    let rows = report::lane_sweep(&sor, &dev, &[1, 2, 4, 8, 16, 32], &Variant::baseline());
    print!("{}", report::render_table(&rows));

    // 2. Full exploration — every legal (lanes × vect × form) point.
    let cfg = ExplorationConfig {
        lanes: vec![1, 2, 4, 8, 16, 32],
        vects: vec![1, 2],
        forms: vec![MemForm::A, MemForm::B],
        ..ExplorationConfig::default()
    };
    let evaluated = explore(&sor, &dev, &cfg);
    println!("\n== top variants of {} evaluated ==", evaluated.len());
    print!("{}", report::render_leaderboard(&evaluated, 8));

    let best = select_best(&evaluated).expect("something fits");
    println!(
        "\nselected: {} — EKIT {:.1}/s, {}",
        best.variant.tag(),
        best.report.throughput.ekit,
        best.report.limiter
    );

    // 3. Guided tuning — the cost model's limiter drives the moves.
    println!("\n== guided tuning from the baseline ==");
    for step in tune(&sor, &dev, Variant::baseline(), 12) {
        println!(
            "  {:<18} EKIT {:>12.1}  {}{}",
            step.variant.tag(),
            step.ekit,
            step.limiter,
            step.action.map(|a| format!("  → {a}")).unwrap_or_default()
        );
    }
}
