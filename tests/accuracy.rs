//! The Table II accuracy claims as cross-crate integration tests: for
//! every evaluation kernel, the cost model's estimates track the virtual
//! toolchain/simulator within the paper's error regime, and the
//! distinctive per-kernel signatures (zero-DSP SOR, the Hotspot BRAM
//! window arithmetic, the LavaMD DSP-pairing gap) hold.

use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::kernels::{all_kernels, EvalKernel, Sor};
use tytra::sim::{run_application, synthesize};
use tytra::transform::Variant;

#[test]
fn all_kernels_in_the_table2_error_regime() {
    let dev = stratix_v_gsd8();
    for k in all_kernels() {
        let m = k.lower_variant(&Variant::baseline()).unwrap();
        let est = estimate(&m, &dev).unwrap();
        let act = synthesize(&m, &dev).unwrap();
        let run = run_application(&m, &dev).unwrap();
        let e = est.resources.total.pct_error_vs(&act.resources);
        assert!(e[0].abs() < 15.0, "{} ALUT {e:?}", k.name());
        assert!(e[1].abs() < 15.0, "{} REG {e:?}", k.name());
        assert!(e[2].abs() < 2.0, "{} BRAM {e:?}", k.name());
        assert!(e[3].abs() <= 15.0, "{} DSP {e:?}", k.name());
        let cpki_err = (est.throughput.cpki - run.cpki() as f64) / run.cpki() as f64 * 100.0;
        assert!(cpki_err.abs() < 6.0, "{} CPKI {cpki_err}%", k.name());
    }
}

#[test]
fn accuracy_holds_across_lane_counts() {
    // The model's accuracy must not be a single-point coincidence: check
    // the error regime at 2 and 8 lanes too.
    let dev = stratix_v_gsd8();
    let sor = Sor::cubic(48, 10);
    for lanes in [2u64, 8] {
        let m = sor.lower_variant(&Variant { lanes, ..Variant::baseline() }).unwrap();
        let est = estimate(&m, &dev).unwrap();
        let act = synthesize(&m, &dev).unwrap();
        let e = est.resources.total.pct_error_vs(&act.resources);
        assert!(e[0].abs() < 15.0, "{lanes} lanes: ALUT {e:?}");
        assert!(e[1].abs() < 15.0, "{lanes} lanes: REG {e:?}");
        assert!(e[2].abs() < 2.0, "{lanes} lanes: BRAM {e:?}");
    }
}

#[test]
fn estimates_track_actuals_proportionally() {
    // Estimate-to-actual ratios must be stable as the design scales —
    // otherwise "accurate at one size" is luck, not a model.
    let dev = stratix_v_gsd8();
    let sor_small = Sor::cubic(24, 10);
    let sor_large = Sor::cubic(96, 10);
    let ratio = |k: &Sor| {
        let m = k.lower_variant(&Variant::baseline()).unwrap();
        let est = estimate(&m, &dev).unwrap().resources.total.aluts as f64;
        let act = synthesize(&m, &dev).unwrap().resources.aluts as f64;
        est / act
    };
    let r_small = ratio(&sor_small);
    let r_large = ratio(&sor_large);
    assert!((r_small - r_large).abs() < 0.08, "{r_small} vs {r_large}");
}

#[test]
fn float_kernel_estimates_are_sane_too() {
    // The paper evaluates integer kernels; the model also carries f32
    // calibration (extension). Build a float stencil and check the
    // estimate-vs-actual regime.
    use tytra::ir::{ModuleBuilder, Opcode, ParKind, ScalarType};
    let t = ScalarType::Float(32);
    let mut b = ModuleBuilder::new("fstencil");
    b.global_input("x", t, 1 << 14);
    b.global_output("y", t, 1 << 14);
    {
        let f = b.function("f0", ParKind::Pipe);
        f.input("x", t);
        f.output("y", t);
        let l = f.offset("x", t, -1);
        let r = f.offset("x", t, 1);
        let s = f.instr(Opcode::Add, t, vec![l, r]);
        let h = f.instr(Opcode::Mul, t, vec![s, f.imm_f(0.5)]);
        f.write_out("y", h);
    }
    b.main_calls("f0");
    b.ndrange(&[1 << 14]).nki(10);
    let m = b.finish().unwrap();
    let dev = stratix_v_gsd8();
    let est = estimate(&m, &dev).unwrap();
    let act = synthesize(&m, &dev).unwrap();
    // FP adders dominate: hundreds of ALUTs, one DSP for the multiply.
    assert!(est.resources.total.aluts > 500);
    assert_eq!(est.resources.total.dsps, 1);
    let e = est.resources.total.pct_error_vs(&act.resources);
    assert!(e[0].abs() < 15.0, "float ALUT {e:?}");
    // Deep FP pipeline: the fill is many cycles.
    assert!(est.params.sched.kpd >= 12);
}
