//! Cross-cutting variant/target coverage: `seq` inner maps (the C4
//! corner of the Fig 5 design space), vectorization (`DV`), the
//! estimated power report against the simulator's power meter, and
//! target portability (Virtex-7 as well as Stratix-V).

use tytra::cost::estimate;
use tytra::device::{stratix_v_gsd8, virtex7_adm7v3};
use tytra::kernels::{all_kernels, EvalKernel, Sor};
use tytra::sim::{execute_module, run_application, synthesize, ExecInputs};
use tytra::transform::{InnerKind, Variant};

#[test]
fn seq_variant_is_slower_but_smaller() {
    let sor = Sor::cubic(24, 10);
    let dev = stratix_v_gsd8();
    let pipe = estimate(&sor.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap();
    let seq_v = Variant { inner: InnerKind::Seq, ..Variant::baseline() };
    let seq = estimate(&sor.lower_variant(&seq_v).unwrap(), &dev).unwrap();
    // One shared FU set beats one FU per instruction…
    assert!(seq.resources.total.aluts < pipe.resources.total.aluts);
    // …at NI× the initiation interval.
    assert!(seq.params.sched.ii > 10.0);
    assert!(seq.throughput.ekit < pipe.throughput.ekit / 5.0);
    assert_eq!(format!("{:?}", seq.class), "C4Sequential");
}

#[test]
fn seq_variant_computes_the_same_answer() {
    let sor = Sor::cubic(10, 1);
    let n = 1000;
    let w = sor.workload();
    let seq_v = Variant { inner: InnerKind::Seq, ..Variant::baseline() };
    let m = sor.lower_variant(&seq_v).unwrap();
    let mut inputs = ExecInputs::default();
    for (k, v) in &w {
        inputs.set(k.clone(), v.clone());
    }
    let hw = execute_module(&m, &inputs, n).unwrap();
    let (sw, _) = sor.reference(&w);
    assert_eq!(hw.arrays["pnew"], sw["pnew"]);
}

#[test]
fn vectorization_halves_compute_time_and_doubles_datapath() {
    let sor = Sor::cubic(48, 10);
    let dev = stratix_v_gsd8();
    let v1 = estimate(&sor.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap();
    let v2_variant = Variant { vect: 2, ..Variant::baseline() };
    let v2 = estimate(&sor.lower_variant(&v2_variant).unwrap(), &dev).unwrap();
    let speed = v1.throughput.t_compute / v2.throughput.t_compute;
    // Within a fraction of a percent: the doubled datapath derates the
    // clock slightly through the congestion model.
    assert!((speed - 2.0).abs() < 0.01, "{speed}");
    let growth =
        v2.resources.breakdown.datapath.aluts as f64 / v1.resources.breakdown.datapath.aluts as f64;
    assert!((growth - 2.0).abs() < 1e-9, "{growth}");
    // The simulator sees the same shape.
    let s1 = run_application(&sor.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap();
    let s2 = run_application(&sor.lower_variant(&v2_variant).unwrap(), &dev).unwrap();
    assert!(s2.cpki() < s1.cpki());
}

#[test]
fn estimated_power_tracks_the_simulators_meter() {
    let dev = stratix_v_gsd8();
    for k in all_kernels() {
        let m = k.lower_variant(&Variant::baseline()).unwrap();
        let est = estimate(&m, &dev).unwrap();
        let run = run_application(&m, &dev).unwrap();
        assert!(est.power_w > 0.0);
        let rel = (est.power_w - run.power.delta_watts).abs() / run.power.delta_watts;
        assert!(
            rel < 0.25,
            "{}: estimated {} W vs metered {} W",
            k.name(),
            est.power_w,
            run.power.delta_watts
        );
        // Energy composes.
        assert!((est.total_energy_j() - est.power_w * est.total_runtime_s()).abs() < 1e-9);
    }
}

#[test]
fn kernels_port_to_the_virtex_target() {
    // Target portability (paper Fig 2: "one-time input for each unique
    // FPGA target"): the same designs cost and synthesize on the
    // Virtex-7 board, with its 36 Kb BRAM granularity and Fig 10 DRAM
    // calibration.
    let dev = virtex7_adm7v3();
    for k in all_kernels() {
        let m = k.lower_variant(&Variant::baseline()).unwrap();
        let est = estimate(&m, &dev).unwrap();
        let act = synthesize(&m, &dev).unwrap();
        assert!(est.fits, "{} must fit a 690T", k.name());
        let e = est.resources.total.pct_error_vs(&act.resources);
        assert!(e[0].abs() < 15.0, "{}: {e:?}", k.name());
        assert!(e[2].abs() < 2.0, "{}: {e:?}", k.name());
    }
    // The Fig 10 baseline makes the Virtex DRAM far less effective than
    // the Maxeler-optimised Stratix path for the same design.
    let sor = Sor::cubic(48, 10);
    let m = sor.lower_variant(&Variant::baseline()).unwrap();
    let on_virtex = estimate(&m, &dev).unwrap();
    let on_stratix = estimate(&m, &stratix_v_gsd8()).unwrap();
    assert!(on_virtex.bandwidth.dram_effective < on_stratix.bandwidth.dram_effective / 3.0);
}

#[test]
fn power_grows_with_lanes() {
    let sor = Sor::cubic(48, 10);
    let dev = stratix_v_gsd8();
    let p1 = estimate(&sor.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap().power_w;
    let p8 =
        estimate(&sor.lower_variant(&Variant { lanes: 8, ..Variant::baseline() }).unwrap(), &dev)
            .unwrap()
            .power_w;
    assert!(p8 > p1);
}
