//! The strongest correctness property in the repository: for *random*
//! front-end kernels (arbitrary expression trees over stencil inputs),
//! the reference evaluator and the lowered-IR hardware interpreter agree
//! bit for bit. This is the paper's "correct-by-construction" claim
//! exercised adversarially, rather than on three hand-picked kernels.

use proptest::prelude::*;
use std::collections::HashMap;
use tytra::ir::{Opcode, ScalarType};
use tytra::sim::{execute_module, ExecInputs};
use tytra::transform::lower::Geometry;
use tytra::transform::Variant;
use tytra::transform::{lower, Expr, KernelDef, Reduction};

const N: usize = 96;

/// Random integer expression over inputs `a`, `b` with small stencil
/// offsets. Depth-bounded.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(Expr::arg("a")),
        Just(Expr::arg("b")),
        (-3i64..=3).prop_map(|o| Expr::off("a", o)),
        (-3i64..=3).prop_map(|o| Expr::off("b", o)),
        (-100i64..100).prop_map(Expr::ConstI),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..10).prop_map(|(x, y, op)| {
                let op = [
                    Opcode::Add,
                    Opcode::Sub,
                    Opcode::Mul,
                    Opcode::And,
                    Opcode::Or,
                    Opcode::Xor,
                    Opcode::Min,
                    Opcode::Max,
                    Opcode::CmpLt,
                    Opcode::CmpGe,
                ][op];
                Expr::bin(op, x, y)
            }),
            (inner.clone(), 0usize..2).prop_map(|(x, op)| {
                let op = [Opcode::Abs, Opcode::Neg][op];
                Expr::Un(op, Box::new(x))
            }),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, x, y)| Expr::Sel(
                Box::new(c),
                Box::new(x),
                Box::new(y)
            )),
        ]
    })
    .boxed()
}

fn arb_kernel() -> impl Strategy<Value = KernelDef> {
    (arb_expr(3), arb_expr(2), any::<bool>()).prop_map(|(e1, e2, with_reduction)| KernelDef {
        name: "rand".into(),
        elem_ty: ScalarType::UInt(18),
        inputs: vec!["a".into(), "b".into()],
        outputs: vec![("y".into(), e1), ("z".into(), e2.clone())],
        reductions: if with_reduction {
            vec![Reduction { acc: "acc".into(), op: Opcode::Add, value: e2 }]
        } else {
            vec![]
        },
    })
}

fn workload(seed: u64) -> HashMap<String, Vec<f64>> {
    // Small deterministic values keep i128 intermediates in range while
    // still exercising wrap-around through multiplies.
    let mut w = HashMap::new();
    let gen = |salt: u64| -> Vec<f64> {
        (0..N as u64)
            .map(|i| {
                let x =
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed ^ salt).rotate_left(17);
                (x % 1024) as f64
            })
            .collect()
    };
    w.insert("a".to_string(), gen(0xA));
    w.insert("b".to_string(), gen(0xB));
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowered_hardware_equals_reference_on_random_kernels(
        kernel in arb_kernel(),
        seed in any::<u64>(),
    ) {
        let geom = Geometry::flat(N as u64, 1);
        let module = lower(&kernel, &geom, &Variant::baseline()).expect("random kernels lower");
        let w = workload(seed);

        let (sw, sw_reds) = kernel.eval_reference(&w, N).expect("reference evaluates");
        let mut inputs = ExecInputs::default();
        for (k, v) in &w {
            inputs.set(k.clone(), v.clone());
        }
        let hw = execute_module(&module, &inputs, N).expect("interpreter runs");

        for (name, expect) in &sw {
            let got = &hw.arrays[name];
            for i in 0..N {
                prop_assert_eq!(
                    got[i],
                    expect[i],
                    "output `{}`[{}]: hw {} vs ref {} (kernel: {:?})",
                    name, i, got[i], expect[i], kernel
                );
            }
        }
        for (acc, expect) in &sw_reds {
            prop_assert_eq!(hw.reductions[acc], *expect, "reduction `{}`", acc);
        }
    }

    #[test]
    fn random_kernels_cost_and_synthesize_consistently(
        kernel in arb_kernel(),
    ) {
        // Every random kernel must also pass through the cost model and
        // the virtual toolchain without panics, with the usual error
        // regime on ALUTs.
        let geom = Geometry::flat(4096, 2);
        let module = lower(&kernel, &geom, &Variant::baseline()).expect("lowers");
        let dev = tytra::device::stratix_v_gsd8();
        let est = tytra::cost::estimate(&module, &dev).expect("estimates");
        let act = tytra::sim::synthesize(&module, &dev).expect("synthesizes");
        prop_assert!(est.resources.total.aluts > 0);
        let err = est.resources.total.pct_error_vs(&act.resources);
        prop_assert!(err[0].abs() < 40.0, "ALUT error {err:?} on {kernel:?}");
        prop_assert!(est.throughput.ekit.is_finite());
    }
}
