//! Replay the checked-in fuzz crash corpus (`tests/fuzz_regressions/`)
//! through the differential oracles, plus a fixed slice of the CI smoke
//! campaign, so every crasher found (and fixed) stays fixed.
//!
//! File-based fixtures replay through the three file-input oracles
//! (round-trip, estimator-vs-sim, session determinism); the search
//! oracle has no file input, so it replays from recorded seeds.

use std::fs;
use std::path::PathBuf;
use tytra_fuzz::{harness, oracle, replay_source, run_case, TirlGen, ToleranceBands, Verdict};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_regressions")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/fuzz_regressions exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "tirl"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty_and_seeded() {
    let files = corpus_files();
    assert!(files.len() >= 5, "expected at least 5 fixtures, got {}", files.len());
    for f in &files {
        let text = fs::read_to_string(f).unwrap();
        assert!(
            text.starts_with("; tytra-fuzz crasher"),
            "{} lacks the corpus metadata header",
            f.display()
        );
        assert!(text.contains("; seed:"), "{} lacks a seed record", f.display());
    }
}

#[test]
fn corpus_replays_clean_through_file_oracles() {
    let bands = ToleranceBands::default();
    for f in corpus_files() {
        let src = fs::read_to_string(&f).unwrap();
        let verdicts = replay_source(&src, &bands);
        assert!(!verdicts.is_empty(), "{}: no oracle ran", f.display());
        for (kind, v) in verdicts {
            assert!(!v.is_failure(), "{} regressed under {:?}: {:?}", f.display(), kind, v);
        }
    }
}

#[test]
fn min_valid_fixture_reaches_the_semantic_oracles() {
    // The canary fixture must actually parse and validate, so the
    // estimator/simulator/session/analyze oracles run on it — if it
    // ever stops validating, the corpus silently loses its semantic
    // coverage.
    let src =
        fs::read_to_string(corpus_dir().join("case_12648430_84_min_valid_pipe.tirl")).unwrap();
    let verdicts = replay_source(&src, &ToleranceBands::default());
    assert_eq!(verdicts.len(), 6, "expected all six file oracles to run: {verdicts:?}");
}

#[test]
fn corpus_fixtures_survive_the_arena_builder() {
    // Every fixture that parses (validated or not) must flatten into an
    // arena whose identity patch fingerprints and materializes exactly
    // as the tree — historical crashers are the best stress inputs for
    // the SoA layout's edge cases (empty bodies, odd call shapes).
    let mut flattened = 0;
    for f in corpus_files() {
        let src = fs::read_to_string(&f).unwrap();
        let Ok(m) = tytra_ir::parse_unvalidated(&src) else { continue };
        let arena = tytra_ir::ArenaModule::build(m.clone());
        assert_eq!(
            arena.identity().fingerprint(),
            tytra_ir::fingerprint_module(&m),
            "{}: arena fingerprint drift",
            f.display()
        );
        assert_eq!(arena.identity().materialize(), m, "{}: arena round-trip drift", f.display());
        flattened += 1;
    }
    assert!(flattened > 0, "no corpus fixture parsed; the arena replay checks nothing");
}

#[test]
fn search_equivalence_replays_from_recorded_seeds() {
    // The search oracle, replayed from the seeds the smoke run uses.
    for seed in [12648430u64, 0xDEAD_BEEF] {
        let mut g = TirlGen::new(seed);
        let v = oracle::search_equivalence(&mut g);
        assert_eq!(v, Verdict::Pass, "seed {seed}: {v:?}");
    }
}

#[test]
fn smoke_campaign_prefix_stays_clean() {
    // The first 128 cases of the exact CI configuration: covers every
    // oracle slot on the scheduling wheel at least once.
    let bands = ToleranceBands::default();
    for case_id in 0..128 {
        let r = run_case(12648430, case_id, &bands);
        assert!(!r.verdict.is_failure(), "case {case_id} [{}]: {:?}", r.oracle.label(), r.verdict);
    }
}

#[test]
fn campaign_counters_add_up() {
    let cfg = harness::FuzzConfig {
        seed: 12648430,
        cases: 96,
        bands: ToleranceBands::default(),
        corpus_dir: None,
    };
    let r = harness::run(&cfg);
    assert_eq!(r.cases, 96);
    assert_eq!(r.passes + r.skips + r.failures(), r.cases);
    let by_oracle_runs: u64 = r.by_oracle.values().map(|(runs, _)| runs).sum();
    assert_eq!(by_oracle_runs, r.cases);
}
