//! End-to-end coverage of custom combinatorial (`comb`) blocks — the
//! fourth parallelism keyword (paper §IV, Figs 7.1 and 8): a pipeline
//! with an inlined single-cycle block must validate, classify, execute
//! with call-argument binding, cost as one stage, and generate HDL.

use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::ir::{
    config_tree, ConfigClass, IrModule, ModuleBuilder, Opcode, Operand, ParKind, ScalarType,
};
use tytra::sim::{execute_module, synthesize, ExecInputs};

const T: ScalarType = ScalarType::UInt(18);
const N: usize = 256;

/// `combA(v, out w): w = (v & 0xFF) ^ (v >> 4)` inlined into a pipeline
/// that first doubles the input: `y = combA(2x) + 1`.
fn comb_module() -> IrModule {
    let mut b = ModuleBuilder::new("comb_demo");
    b.global_input("x", T, N as u64);
    b.global_output("y", T, N as u64);
    {
        let f = b.function("combA", ParKind::Comb);
        f.input("v", T);
        f.output("w", T);
        let v = f.arg("v");
        let low = f.instr(Opcode::And, T, vec![v.clone(), f.imm(0xFF)]);
        let high = f.instr(Opcode::Shr, T, vec![v, f.imm(4)]);
        let mixed = f.instr(Opcode::Xor, T, vec![low, high]);
        f.write_out("w", mixed);
    }
    {
        let f = b.function("f0", ParKind::Pipe);
        f.input("x", T);
        f.output("y", T);
        let x = f.arg("x");
        let doubled = f.instr_named("doubled", Opcode::Shl, T, vec![x, f.imm(1)]);
        // Declare the landing site for combA's output, then call it.
        let mixed_slot = f.instr_named("mixed", Opcode::Or, T, vec![doubled.clone(), f.imm(0)]);
        f.call("combA", vec![doubled, mixed_slot.clone()], ParKind::Comb);
        let out = f.instr(Opcode::Add, T, vec![Operand::local("mixed"), f.imm(1)]);
        f.write_out("y", out);
    }
    b.main_calls("f0");
    b.ndrange(&[N as u64]);
    b.finish().expect("comb module is valid")
}

#[test]
fn classification_keeps_the_pipe_class() {
    let tree = config_tree::extract(&comb_module()).unwrap();
    assert_eq!(tree.class, ConfigClass::C2SinglePipe);
    assert_eq!(tree.root.count_kind(ParKind::Comb), 1);
}

#[test]
fn comb_call_binds_arguments_and_computes() {
    let m = comb_module();
    let x: Vec<f64> = (0..N).map(|i| (i * 37 % 4096) as f64).collect();
    let mut inputs = ExecInputs::default();
    inputs.set("x", x.clone());
    let out = execute_module(&m, &inputs, N).unwrap();
    let y = &out.arrays["y"];
    for i in 0..N {
        let v = (x[i] as i64) * 2;
        let expect = (((v & 0xFF) ^ (v >> 4)) + 1) as f64;
        assert_eq!(y[i], expect, "item {i} (x = {})", x[i]);
    }
}

#[test]
fn comb_block_costs_one_stage() {
    let dev = stratix_v_gsd8();
    let with_comb = estimate(&comb_module(), &dev).unwrap();
    // Pipeline: shl → or(mixed) → add → or(y__out) = 4 stages, plus one
    // inlined comb stage = 5.
    assert_eq!(with_comb.params.sched.kpd, 5);
    // The comb body (and/shr/xor + output route) counts toward NI.
    assert_eq!(with_comb.params.sched.ni, 4 + 4);
    // The comb's chained delay binds the clock below a plain adder's.
    assert!(with_comb.clock.max_stage_delay_ns > 2.1);
}

#[test]
fn comb_synthesis_has_no_internal_pipeline_registers() {
    let dev = stratix_v_gsd8();
    let m = comb_module();
    let est = estimate(&m, &dev).unwrap();
    let act = synthesize(&m, &dev).unwrap();
    let e = est.resources.total.pct_error_vs(&act.resources);
    assert!(e[0].abs() < 30.0, "{e:?}");
    // A comb block registers only its output: the whole design's
    // registers stay close to (stages × width).
    assert!(act.resources.regs < 400, "{}", act.resources.regs);
}

#[test]
fn comb_hdl_emits_and_checks() {
    let dev = stratix_v_gsd8();
    let hdl = tytra::codegen::emit_design(&comb_module(), &dev).unwrap();
    tytra::codegen::check(&hdl).unwrap();
    assert!(hdl.contains("module tytra_combA"));
}

#[test]
fn comb_round_trips_through_text() {
    let m = comb_module();
    let m2 = tytra::ir::parse(&tytra::ir::print(&m)).unwrap();
    assert_eq!(m, m2);
}
