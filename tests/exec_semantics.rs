//! Cross-crate semantic validation: for every evaluation kernel, the
//! lowered TyTra-IR datapath interpreted by the simulator must compute
//! exactly what the reference CPU implementation computes — outputs and
//! reductions, bit for bit (integer semantics are width-masked on both
//! sides).

use std::collections::HashMap;
use tytra::kernels::{EvalKernel, Hotspot, LavaMd, Sor};
use tytra::sim::{execute_module, ExecInputs};
use tytra::transform::Variant;

fn check_kernel(kernel: &dyn EvalKernel, workload: &HashMap<String, Vec<f64>>, n: usize) {
    let m = kernel.lower_variant(&Variant::baseline()).unwrap();
    let mut inputs = ExecInputs::default();
    for (k, v) in workload {
        inputs.set(k.clone(), v.clone());
    }
    let hw = execute_module(&m, &inputs, n).unwrap();
    let (sw, sw_reds) = kernel.reference(workload);
    for (name, expect) in &sw {
        let got = hw
            .arrays
            .get(name)
            .unwrap_or_else(|| panic!("{}: missing output `{name}`", kernel.name()));
        assert_eq!(got.len(), expect.len());
        for i in 0..n {
            assert_eq!(
                got[i],
                expect[i],
                "{}::{name}[{i}]: hardware {} vs reference {}",
                kernel.name(),
                got[i],
                expect[i]
            );
        }
    }
    for (acc, expect) in &sw_reds {
        assert_eq!(hw.reductions[acc], *expect, "{}::{acc} reduction mismatch", kernel.name());
    }
}

#[test]
fn sor_datapath_equals_reference() {
    let k = Sor::cubic(10, 1);
    let w = k.workload();
    check_kernel(&k, &w, 1000);
}

#[test]
fn hotspot_datapath_equals_reference() {
    let k = Hotspot { rows: 24, cols: 24, nki: 1 };
    let w = k.workload();
    check_kernel(&k, &w, 576);
}

#[test]
fn lavamd_datapath_equals_reference() {
    let k = LavaMd { n_particles: 2048, nki: 1 };
    let w = k.workload();
    check_kernel(&k, &w, 2048);
}

#[test]
fn frontend_evaluator_is_the_same_semantics() {
    // Three-way agreement: reference impl ≡ front-end evaluator ≡
    // interpreted hardware. The first two are compared in the kernels
    // crate; close the triangle here for one kernel.
    let k = Sor::cubic(8, 1);
    let w = k.workload();
    let n = 512;
    let (fe, fe_reds) = k.kernel_def().eval_reference(&w, n).unwrap();

    let m = k.lower_variant(&Variant::baseline()).unwrap();
    let mut inputs = ExecInputs::default();
    for (key, v) in &w {
        inputs.set(key.clone(), v.clone());
    }
    let hw = execute_module(&m, &inputs, n).unwrap();
    assert_eq!(hw.arrays["pnew"], fe["pnew"]);
    assert_eq!(hw.reductions["sorErrAcc"], fe_reds["sorErrAcc"]);
}
