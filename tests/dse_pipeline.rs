//! The full design-space-exploration pipeline across crates: enumerate
//! variants, cost them, select, tune — then confirm the selection with
//! the virtual substrate (the decision the cost model made must survive
//! contact with the simulator).

use tytra::device::{eval_small, stratix_v_gsd8};
use tytra::dse::{explore, select_best, tune, ExplorationConfig};
use tytra::ir::MemForm;
use tytra::kernels::{EvalKernel, Hotspot, LavaMd, Sor};
use tytra::sim::run_application;
use tytra::transform::Variant;

fn cfg() -> ExplorationConfig {
    ExplorationConfig {
        lanes: vec![1, 2, 4, 8],
        vects: vec![1],
        forms: vec![MemForm::A, MemForm::B],
        ..ExplorationConfig::default()
    }
}

#[test]
fn cost_model_choice_wins_on_the_simulator_too() {
    // The whole point of a fast cost model: its ranking must agree with
    // the expensive ground truth on the decision that matters (best vs
    // baseline).
    let sor = Sor::cubic(48, 100);
    let dev = stratix_v_gsd8();
    let evaluated = explore(&sor, &dev, &cfg());
    let best = select_best(&evaluated).expect("fits");
    let baseline =
        evaluated.iter().find(|e| e.variant == Variant::baseline()).expect("baseline evaluated");

    let best_run = run_application(&sor.lower_variant(&best.variant).unwrap(), &dev).unwrap();
    let base_run = run_application(&sor.lower_variant(&baseline.variant).unwrap(), &dev).unwrap();
    assert!(
        best_run.t_total_s <= base_run.t_total_s,
        "cost model picked {} but the simulator disagrees ({} vs {} s)",
        best.variant.tag(),
        best_run.t_total_s,
        base_run.t_total_s
    );
}

#[test]
fn exploration_covers_every_kernel() {
    let dev = stratix_v_gsd8();
    let kernels: Vec<Box<dyn EvalKernel>> = vec![
        Box::new(Sor::cubic(24, 10)),
        Box::new(Hotspot { rows: 64, cols: 64, nki: 10 }),
        Box::new(LavaMd { n_particles: 16_384, nki: 10 }),
    ];
    for k in &kernels {
        let evaluated = explore(k.as_ref(), &dev, &cfg());
        assert!(!evaluated.is_empty(), "{}", k.name());
        let best = select_best(&evaluated).unwrap_or_else(|| panic!("{} has no fit", k.name()));
        assert!(best.report.fits);
        // Exploration beats (or at worst matches) the baseline estimate.
        let baseline = evaluated.iter().find(|e| e.variant == Variant::baseline()).unwrap();
        assert!(best.report.throughput.ekit >= baseline.report.throughput.ekit);
    }
}

#[test]
fn tuner_and_explorer_agree_on_the_winning_region() {
    let sor = Sor::cubic(48, 100);
    let dev = stratix_v_gsd8();
    let evaluated = explore(&sor, &dev, &cfg());
    let best = select_best(&evaluated).expect("fits");
    let steps = tune(&sor, &dev, Variant::baseline(), 12);
    let tuned = steps.last().expect("at least one step");
    // Both approaches should settle within 2× EKIT of each other.
    let ratio = best.report.throughput.ekit / tuned.ekit;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "explorer {} vs tuner {} ({:?})",
        best.report.throughput.ekit,
        tuned.ekit,
        tuned.variant
    );
}

#[test]
fn resource_walls_invalidate_big_variants_on_small_devices() {
    let sor = Sor::cubic(48, 10);
    let dev = eval_small();
    let evaluated = explore(&sor, &dev, &cfg());
    let invalid: Vec<_> = evaluated.iter().filter(|e| !e.is_valid()).collect();
    assert!(!invalid.is_empty(), "8 SOR lanes must blow the eval target");
    // And the selection never picks one.
    let best = select_best(&evaluated).expect("some variant fits");
    assert!(best.is_valid());
}
