//! End-to-end coverage of the Fig 7 coarse-grained pipeline patterns
//! (pattern 3: `pipe` of peer `pipe`s; pattern 4: `par` of coarse
//! pipes): construction, classification, costing, simulation, functional
//! semantics, and code generation.

use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::ir::{config_tree, ConfigClass, IrModule, ModuleBuilder, Opcode, ParKind, ScalarType};
use tytra::sim::{execute_module, run_application, synthesize, ExecInputs};

const T: ScalarType = ScalarType::UInt(18);
const N: u64 = 4096;

/// Two-stage coarse pipeline: stage A smooths (3-point stencil), stage B
/// squares-and-offsets the smoothed value — `y = smooth(x)² + x`-style
/// composition expressed as peer `pipe` functions inside a `pipe` parent
/// (the paper's Fig 7, pattern 3 and the Fig 8 tree).
fn coarse_module(lanes: usize) -> IrModule {
    let mut b = ModuleBuilder::new(format!("coarse_l{lanes}"));
    if lanes > 1 {
        for l in 0..lanes {
            b.global_input(&format!("x{l}"), T, N / lanes as u64);
            b.global_output(&format!("y{l}"), T, N / lanes as u64);
        }
    } else {
        b.global_input("x", T, N);
        b.global_output("y", T, N);
    }
    {
        let f = b.function("stage_smooth", ParKind::Pipe);
        f.input("x", T);
        f.output("s", T);
        let l = f.offset("x", T, -1);
        let r = f.offset("x", T, 1);
        let x = f.arg("x");
        let sum = f.instr(Opcode::Add, T, vec![l, r]);
        let sum2 = f.instr(Opcode::Add, T, vec![sum, x]);
        f.write_out("s", sum2);
    }
    {
        let f = b.function("stage_square", ParKind::Pipe);
        f.input("s", T);
        f.output("y", T);
        let s = f.arg("s");
        let sq = f.instr(Opcode::Mul, T, vec![s.clone(), s]);
        let out = f.instr(Opcode::Add, T, vec![sq, f.imm(7)]);
        f.write_out("y", out);
    }
    {
        let f = b.function("pipeTop", ParKind::Pipe);
        f.input("x", T);
        f.output("y", T);
        f.call("stage_smooth", vec![], ParKind::Pipe);
        f.call("stage_square", vec![], ParKind::Pipe);
    }
    if lanes > 1 {
        let f = b.function("lanes", ParKind::Par);
        for _ in 0..lanes {
            f.call("pipeTop", vec![], ParKind::Pipe);
        }
        b.main_calls("lanes");
    } else {
        b.main_calls("pipeTop");
    }
    b.ndrange(&[N]).nki(5);
    b.finish().expect("coarse module is valid")
}

#[test]
fn classification_matches_fig7() {
    let t1 = config_tree::extract(&coarse_module(1)).unwrap();
    assert_eq!(t1.class, ConfigClass::CoarsePipe, "pattern 3");
    assert_eq!(t1.root.depth(), 2);
    let t4 = config_tree::extract(&coarse_module(4)).unwrap();
    assert_eq!(t4.class, ConfigClass::ParCoarsePipe, "pattern 4");
    assert_eq!(t4.lanes, 4);
}

#[test]
fn coarse_kpd_is_the_sum_of_stage_depths() {
    let dev = stratix_v_gsd8();
    let coarse = estimate(&coarse_module(1), &dev).unwrap();
    // stage_smooth: add+add+or = 3; stage_square: mul(2)+add+or = 4;
    // pipeTop body: 0. Total 7.
    assert_eq!(coarse.params.sched.kpd, 7);
    assert_eq!(coarse.params.sched.ni, 6);
}

#[test]
fn coarse_pipeline_computes_the_composed_function() {
    let m = coarse_module(1);
    let n = N as usize;
    let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 100) as f64).collect();
    let mut inputs = ExecInputs::default();
    inputs.set("x", x.clone());
    let out = execute_module(&m, &inputs, n).unwrap();
    let y = &out.arrays["y"];
    let mask = |v: i64| -> f64 { (v.rem_euclid(1 << 18)) as f64 };
    for i in 1..(n - 1) {
        let s = x[i - 1] + x[i + 1] + x[i];
        let expect = mask((s as i64) * (s as i64) + 7);
        assert_eq!(y[i], expect, "item {i}");
    }
    // The intermediate stage's output is visible too.
    assert!(out.arrays.contains_key("s"));
}

#[test]
fn coarse_pipeline_costs_and_synthesizes() {
    let dev = stratix_v_gsd8();
    let m = coarse_module(4);
    let est = estimate(&m, &dev).unwrap();
    let act = synthesize(&m, &dev).unwrap();
    // Both stages × 4 lanes: the variable multiply books a DSP per lane.
    assert_eq!(est.resources.total.dsps, 4);
    assert_eq!(act.resources.dsps, 4);
    let e = est.resources.total.pct_error_vs(&act.resources);
    assert!(e[0].abs() < 25.0, "{e:?}");
    let run = run_application(&m, &dev).unwrap();
    assert!(run.cpki() >= N / 4);
}

#[test]
fn coarse_pipeline_emits_checked_hdl() {
    let dev = stratix_v_gsd8();
    let m = coarse_module(2);
    let hdl = tytra::codegen::emit_design(&m, &dev).unwrap();
    tytra::codegen::check(&hdl).unwrap();
    assert!(hdl.contains("module tytra_stage_smooth"));
    assert!(hdl.contains("module tytra_stage_square"));
    assert!(hdl.contains("module tytra_pipeTop"));
}

#[test]
fn textual_round_trip_of_coarse_designs() {
    let m = coarse_module(4);
    let m2 = tytra::ir::parse(&tytra::ir::print(&m)).unwrap();
    assert_eq!(m, m2);
}
