//! Textual IR round-trip properties across crates: shipped assets
//! parse; printed modules re-parse to equal modules; randomised
//! builder-generated designs survive the round trip.

use proptest::prelude::*;
use tytra::ir::{parse, print, MemForm, ModuleBuilder, Opcode, ParKind, ScalarType};

#[test]
fn shipped_assets_parse_and_round_trip() {
    for asset in [
        "assets/sor_c2.tirl",
        "assets/sor_c1_4lane.tirl",
        "assets/hotspot_c2.tirl",
        "assets/lavamd_c2.tirl",
    ] {
        let src = std::fs::read_to_string(asset).unwrap_or_else(|e| panic!("{asset}: {e}"));
        let m = parse(&src).unwrap_or_else(|e| panic!("{asset}: {e}"));
        let m2 = parse(&print(&m)).unwrap();
        assert_eq!(m, m2, "{asset}");
    }
}

#[test]
fn asset_matches_kernel_library_lowering() {
    use tytra::kernels::{EvalKernel, Sor};
    use tytra::transform::Variant;
    let src = std::fs::read_to_string("assets/sor_c2.tirl").unwrap();
    let from_file = parse(&src).unwrap();
    let from_library = Sor::default().lower_variant(&Variant::baseline()).unwrap();
    assert_eq!(
        from_file, from_library,
        "regenerate assets with `cargo run -p tytra-cli --example gen_assets`"
    );
}

/// Strategy: a random but well-formed module exercising pipes, offsets,
/// reductions, strided arrays, vectorization, every memory form and
/// lane replication.
fn arb_module() -> impl Strategy<Value = tytra::ir::IrModule> {
    (
        1u16..4,                                                  // type selector
        proptest::collection::vec((0usize..6, -64i64..64), 1..6), // op picks
        0u32..3,                                                  // lanes power
        prop_oneof![
            Just(MemForm::A),
            Just(MemForm::B),
            Just(MemForm::C),
            (2u32..9).prop_map(|t| MemForm::Tiled { tiles: t }),
        ],
        1u64..64,
        proptest::option::of(1i64..48), // optional stencil window
        any::<bool>(),                  // reduction?
        any::<bool>(),                  // strided input?
        prop_oneof![Just(1u32), Just(2u32), Just(4u32)], // DV
    )
        .prop_map(|(tysel, ops, lanes_pow, form, nd, window, reduce, strided, dv)| {
            let ty = match tysel {
                1 => ScalarType::UInt(18),
                2 => ScalarType::Int(32),
                _ => ScalarType::UInt(24),
            };
            let lanes = 1u64 << lanes_pow;
            let n = nd * lanes * u64::from(dv) * 8;
            let mut b = ModuleBuilder::new("prop");
            let declare = |b: &mut ModuleBuilder, name: &str, len, out: bool| {
                use tytra::ir::{AccessPattern, StreamDir};
                if form == MemForm::C {
                    b.local_array(
                        name,
                        ty,
                        len,
                        if out { StreamDir::Write } else { StreamDir::Read },
                    );
                } else if out {
                    b.global_output(name, ty, len);
                } else if strided {
                    b.global_array(
                        name,
                        ty,
                        len,
                        StreamDir::Read,
                        AccessPattern::Strided { stride: 64 },
                    );
                } else {
                    b.global_input(name, ty, len);
                }
            };
            if lanes > 1 {
                for l in 0..lanes {
                    declare(&mut b, &format!("x{l}"), n / lanes, false);
                    declare(&mut b, &format!("y{l}"), n / lanes, true);
                }
            } else {
                declare(&mut b, "x", n, false);
                declare(&mut b, "y", n, true);
            }
            {
                let f = b.function("f0", ParKind::Pipe);
                f.input("x", ty);
                f.output("y", ty);
                let mut cur = match window {
                    Some(w) => {
                        let fwd = f.offset("x", ty, w);
                        let bwd = f.offset("x", ty, -w);
                        f.instr(Opcode::Add, ty, vec![fwd, bwd])
                    }
                    None => f.arg("x"),
                };
                for (sel, imm) in ops {
                    let op = [
                        Opcode::Add,
                        Opcode::Mul,
                        Opcode::Xor,
                        Opcode::Max,
                        Opcode::Shr,
                        Opcode::CmpLt,
                    ][sel];
                    let imm = if op == Opcode::Shr { imm.rem_euclid(16) } else { imm };
                    cur = f.instr(op, ty, vec![cur, tytra::ir::Operand::Imm(imm)]);
                }
                if reduce {
                    f.reduce("acc", Opcode::Add, ty, cur.clone());
                }
                f.write_out("y", cur);
            }
            if lanes > 1 {
                let f = b.function("f1", ParKind::Par);
                for _ in 0..lanes {
                    f.call("f0", vec![], ParKind::Pipe);
                }
                b.main_calls("f1");
            } else {
                b.main_calls("f0");
            }
            b.ndrange(&[n]).nki(3).form(form).vect(dv);
            b.finish().expect("generated module is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn printed_modules_reparse_identically(m in arb_module()) {
        let text = print(&m);
        let m2 = parse(&text).expect("canonical text parses");
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn printing_is_stable(m in arb_module()) {
        let once = print(&m);
        let twice = print(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn random_modules_cost_without_panicking(m in arb_module()) {
        let dev = tytra::device::stratix_v_gsd8();
        let r = tytra::cost::estimate(&m, &dev).expect("estimable");
        prop_assert!(r.throughput.ekit.is_finite());
        prop_assert!(r.resources.total.aluts > 0);
        prop_assert!(r.clock.freq_mhz >= 1.0);
    }
}
