//! Memory-execution forms end to end (cost model *and* simulator must
//! order them the same way), plus code generation over every kernel ×
//! variant combination.

use tytra::codegen::{check, emit_design, emit_maxj_wrapper};
use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::ir::MemForm;
use tytra::kernels::{EvalKernel, Hotspot, LavaMd, Sor};
use tytra::sim::run_application;
use tytra::transform::Variant;

#[test]
fn forms_order_consistently_in_model_and_simulator() {
    // Form A (host every call) < Form B (staged) < Form C (on-chip) in
    // throughput, for a kernel whose working set fits BRAM.
    let sor = Sor::cubic(16, 100); // 4096 items × 3 B × 3 arrays ≈ 37 KB
    let dev = stratix_v_gsd8();
    let mut ekit = Vec::new();
    let mut sim_t = Vec::new();
    for form in [MemForm::A, MemForm::B, MemForm::C] {
        let m = sor.lower_variant(&Variant { form, ..Variant::baseline() }).unwrap();
        ekit.push(estimate(&m, &dev).unwrap().throughput.ekit);
        sim_t.push(run_application(&m, &dev).unwrap().t_total_s);
    }
    assert!(ekit[0] < ekit[1], "model: A {} < B {}", ekit[0], ekit[1]);
    assert!(ekit[1] <= ekit[2], "model: B {} <= C {}", ekit[1], ekit[2]);
    assert!(sim_t[0] > sim_t[1], "sim: A {} > B {}", sim_t[0], sim_t[1]);
    assert!(sim_t[1] >= sim_t[2] * 0.99, "sim: B {} >= C {}", sim_t[1], sim_t[2]);
}

#[test]
fn tiled_form_costs_between_b_and_c_when_memory_bound() {
    // Hotspot moves 9 × 4-byte words per item — with 8 lanes the DRAM
    // term binds, giving tiling something to win.
    let hs = Hotspot { rows: 512, cols: 512, nki: 100 };
    let dev = stratix_v_gsd8();
    let base = Variant { lanes: 8, ..Variant::baseline() };
    let b = estimate(&hs.lower_variant(&base).unwrap(), &dev).unwrap();
    assert_eq!(b.limiter, tytra::cost::Limiter::DramBandwidth, "premise: B is memory-bound");
    let tiled = {
        let v = Variant { form: MemForm::Tiled { tiles: 8 }, ..base };
        estimate(&hs.lower_variant(&v).unwrap(), &dev).unwrap()
    };
    assert!(
        tiled.throughput.ekit > b.throughput.ekit,
        "tiling should relieve the DRAM wall: {} vs {}",
        tiled.throughput.ekit,
        b.throughput.ekit
    );
}

#[test]
fn codegen_emits_checked_hdl_for_every_kernel_and_lane_count() {
    let dev = stratix_v_gsd8();
    let kernels: Vec<Box<dyn EvalKernel>> = vec![
        Box::new(Sor::cubic(16, 1)),
        Box::new(Hotspot { rows: 32, cols: 32, nki: 1 }),
        Box::new(LavaMd { n_particles: 1024, nki: 1 }),
    ];
    for k in &kernels {
        for lanes in [1u64, 4] {
            let v = Variant { lanes, ..Variant::baseline() };
            let m = k.lower_variant(&v).unwrap();
            let hdl =
                emit_design(&m, &dev).unwrap_or_else(|e| panic!("{} x{lanes}: {e}", k.name()));
            check(&hdl).unwrap_or_else(|errs| {
                panic!("{} x{lanes}: {} structural errors: {errs:?}", k.name(), errs.len())
            });
            // Lane instances present.
            for l in 1..=if lanes > 1 { lanes } else { 0 } {
                assert!(hdl.contains(&format!("lane{l} (")), "{} lane {l}", k.name());
            }
            let wrapper = emit_maxj_wrapper(&m);
            assert!(wrapper.contains("extends Kernel"));
            // One io.input per read port.
            let reads = m.ports.iter().filter(|p| p.dir == tytra::ir::StreamDir::Read).count();
            assert_eq!(wrapper.matches("io.input(").count(), reads, "{}", k.name());
        }
    }
}

#[test]
fn hdl_scales_with_design_size() {
    let dev = stratix_v_gsd8();
    let sor = Sor::cubic(16, 1);
    let m1 = sor.lower_variant(&Variant::baseline()).unwrap();
    let m4 = sor.lower_variant(&Variant { lanes: 4, ..Variant::baseline() }).unwrap();
    let h1 = emit_design(&m1, &dev).unwrap();
    let h4 = emit_design(&m4, &dev).unwrap();
    assert!(h4.len() > h1.len());
    assert_eq!(h4.matches("tytra_f0 lane").count(), 4);
}
