//! End-to-end integration over the SOR kernel: front-end lowering →
//! cost model → virtual toolchain → cycle simulation, plus semantic
//! equivalence of the lowered datapath against the reference CPU code
//! under lane-splitting reshapes.

use tytra::cost::estimate;
use tytra::device::stratix_v_gsd8;
use tytra::kernels::{EvalKernel, Sor};
use tytra::sim::{execute_module, run_application, synthesize, ExecInputs};
use tytra::transform::Variant;

#[test]
fn estimate_synthesize_simulate_agree_on_sor() {
    let sor = Sor::cubic(24, 10);
    let dev = stratix_v_gsd8();
    let m = sor.lower_variant(&Variant::baseline()).unwrap();

    let est = estimate(&m, &dev).unwrap();
    let act = synthesize(&m, &dev).unwrap();
    let run = run_application(&m, &dev).unwrap();

    // Resource agreement in the Table II regime.
    let err = est.resources.total.pct_error_vs(&act.resources);
    assert!(err[0].abs() < 15.0, "ALUT {err:?}");
    assert!(err[1].abs() < 15.0, "REG {err:?}");
    assert!(err[2].abs() < 2.0, "BRAM {err:?}");
    assert_eq!(est.resources.total.dsps, act.resources.dsps);

    // Throughput agreement.
    let cpki_err = (est.throughput.cpki - run.cpki() as f64) / run.cpki() as f64;
    assert!(cpki_err.abs() < 0.06, "CPKI err {cpki_err}");

    // Clock agreement within P&R jitter + congestion differences.
    let f_err = (est.clock.freq_mhz - run.freq_mhz) / run.freq_mhz;
    assert!(f_err.abs() < 0.15, "clock err {f_err}");
}

#[test]
fn lowered_sor_computes_the_reference_answer() {
    let sor = Sor::cubic(12, 1);
    let m = sor.lower_variant(&Variant::baseline()).unwrap();
    let workload = sor.workload();
    let n = sor.geometry().size() as usize;

    let mut inputs = ExecInputs::default();
    for (k, v) in &workload {
        inputs.set(k.clone(), v.clone());
    }
    let hw = execute_module(&m, &inputs, n).unwrap();
    let (sw, sw_reds) = sor.reference(&workload);

    assert_eq!(hw.arrays["pnew"], sw["pnew"]);
    assert_eq!(hw.reductions["sorErrAcc"], sw_reds["sorErrAcc"]);
}

#[test]
fn lane_split_preserves_semantics() {
    // The order-preserving reshape: running each lane's chunk through
    // the lane pipeline must equal the flat run, away from chunk
    // boundaries (the per-lane hardware sees zeros beyond its chunk —
    // the halo the host-side splitter feeds in production).
    let sor = Sor::cubic(12, 1);
    let n = sor.geometry().size() as usize;
    let workload = sor.workload();
    let (sw, _) = sor.reference(&workload);

    let lanes = 4usize;
    let m4 = sor.lower_variant(&Variant { lanes: lanes as u64, ..Variant::baseline() }).unwrap();
    let per = n / lanes;
    let halo = 12 * 12; // one plane of look-ahead/behind
    for l in 0..lanes {
        let lo = l * per;
        let hi = lo + per;
        let mut inputs = ExecInputs::default();
        for (k, v) in &workload {
            inputs.set(k.clone(), v[lo..hi].to_vec());
        }
        let hw = execute_module(&m4, &inputs, per).unwrap();
        let got = &hw.arrays["pnew"];
        // Interior (away from the chunk's halo) must match the flat run.
        for i in halo..(per - halo) {
            assert_eq!(
                got[i],
                sw["pnew"][lo + i],
                "lane {l}, item {i}: split run diverged from flat run"
            );
        }
    }
}

#[test]
fn host_orchestrated_multi_lane_run_equals_the_flat_run() {
    // The executable `mappar (mappipe f) ∘ reshapeTo ≡ map f` law: the
    // host splits arrays into lane chunks with stencil halos; the
    // reassembled output is identical to the single-lane run on every
    // element (not just chunk interiors).
    let sor = Sor::cubic(12, 1);
    let n = sor.geometry().size() as usize;
    let workload = sor.workload();
    let mut inputs = tytra::sim::ExecInputs::default();
    for (k, v) in &workload {
        inputs.set(k.clone(), v.clone());
    }

    let flat = {
        let m = sor.lower_variant(&Variant::baseline()).unwrap();
        tytra::sim::execute_module(&m, &inputs, n).unwrap()
    };
    let m4 = sor.lower_variant(&Variant { lanes: 4, ..Variant::baseline() }).unwrap();
    let halo = 12 * 12; // one k-plane: the largest stencil offset
    let split = tytra::sim::execute_application(&m4, &inputs, n, halo).unwrap();

    assert_eq!(split.arrays["pnew"], flat.arrays["pnew"]);
}

#[test]
fn four_lane_variant_runs_faster_and_costs_more() {
    let sor = Sor::cubic(48, 100);
    let dev = stratix_v_gsd8();
    let m1 = sor.lower_variant(&Variant::baseline()).unwrap();
    let m4 = sor.lower_variant(&Variant { lanes: 4, ..Variant::baseline() }).unwrap();

    let r1 = run_application(&m1, &dev).unwrap();
    let r4 = run_application(&m4, &dev).unwrap();
    assert!(r4.t_total_s < r1.t_total_s / 2.0, "{} vs {}", r4.t_total_s, r1.t_total_s);

    let s1 = synthesize(&m1, &dev).unwrap();
    let s4 = synthesize(&m4, &dev).unwrap();
    assert!(s4.resources.aluts > 3 * s1.resources.aluts);
}

#[test]
fn textual_round_trip_preserves_cost() {
    let sor = Sor::cubic(24, 10);
    let dev = stratix_v_gsd8();
    let m = sor.lower_variant(&Variant::baseline()).unwrap();
    let m2 = tytra::ir::parse(&tytra::ir::print(&m)).unwrap();
    assert_eq!(m, m2);
    let a = estimate(&m, &dev).unwrap();
    let b = estimate(&m2, &dev).unwrap();
    assert_eq!(a.resources.total, b.resources.total);
    assert_eq!(a.throughput.cpki, b.throughput.cpki);
}
