/root/repo/target/debug/deps/comb_blocks-a676bf6b4c6b3c88.d: tests/comb_blocks.rs

/root/repo/target/debug/deps/comb_blocks-a676bf6b4c6b3c88: tests/comb_blocks.rs

tests/comb_blocks.rs:
