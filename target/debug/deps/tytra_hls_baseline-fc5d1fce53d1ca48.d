/root/repo/target/debug/deps/tytra_hls_baseline-fc5d1fce53d1ca48.d: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

/root/repo/target/debug/deps/tytra_hls_baseline-fc5d1fce53d1ca48: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

crates/hls-baseline/src/lib.rs:
crates/hls-baseline/src/case_study.rs:
crates/hls-baseline/src/cpu.rs:
crates/hls-baseline/src/maxj.rs:
crates/hls-baseline/src/slow_estimator.rs:
