/root/repo/target/debug/deps/accuracy-e54ff978127d771c.d: tests/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-e54ff978127d771c.rmeta: tests/accuracy.rs Cargo.toml

tests/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
