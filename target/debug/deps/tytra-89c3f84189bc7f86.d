/root/repo/target/debug/deps/tytra-89c3f84189bc7f86.d: src/lib.rs

/root/repo/target/debug/deps/libtytra-89c3f84189bc7f86.rlib: src/lib.rs

/root/repo/target/debug/deps/libtytra-89c3f84189bc7f86.rmeta: src/lib.rs

src/lib.rs:
