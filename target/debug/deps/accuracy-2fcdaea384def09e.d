/root/repo/target/debug/deps/accuracy-2fcdaea384def09e.d: tests/accuracy.rs

/root/repo/target/debug/deps/accuracy-2fcdaea384def09e: tests/accuracy.rs

tests/accuracy.rs:
