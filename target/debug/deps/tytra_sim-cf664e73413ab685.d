/root/repo/target/debug/deps/tytra_sim-cf664e73413ab685.d: crates/sim/src/lib.rs crates/sim/src/cycle.rs crates/sim/src/exec.rs crates/sim/src/host.rs crates/sim/src/memory.rs crates/sim/src/netlist.rs crates/sim/src/power.rs crates/sim/src/rng.rs crates/sim/src/synth.rs

/root/repo/target/debug/deps/tytra_sim-cf664e73413ab685: crates/sim/src/lib.rs crates/sim/src/cycle.rs crates/sim/src/exec.rs crates/sim/src/host.rs crates/sim/src/memory.rs crates/sim/src/netlist.rs crates/sim/src/power.rs crates/sim/src/rng.rs crates/sim/src/synth.rs

crates/sim/src/lib.rs:
crates/sim/src/cycle.rs:
crates/sim/src/exec.rs:
crates/sim/src/host.rs:
crates/sim/src/memory.rs:
crates/sim/src/netlist.rs:
crates/sim/src/power.rs:
crates/sim/src/rng.rs:
crates/sim/src/synth.rs:
