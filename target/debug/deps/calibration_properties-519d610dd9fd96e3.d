/root/repo/target/debug/deps/calibration_properties-519d610dd9fd96e3.d: crates/device/tests/calibration_properties.rs

/root/repo/target/debug/deps/calibration_properties-519d610dd9fd96e3: crates/device/tests/calibration_properties.rs

crates/device/tests/calibration_properties.rs:
