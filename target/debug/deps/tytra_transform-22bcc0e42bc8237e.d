/root/repo/target/debug/deps/tytra_transform-22bcc0e42bc8237e.d: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

/root/repo/target/debug/deps/libtytra_transform-22bcc0e42bc8237e.rlib: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

/root/repo/target/debug/deps/libtytra_transform-22bcc0e42bc8237e.rmeta: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

crates/transform/src/lib.rs:
crates/transform/src/cexpr.rs:
crates/transform/src/expr.rs:
crates/transform/src/lower.rs:
crates/transform/src/proofs.rs:
crates/transform/src/typetrans.rs:
crates/transform/src/vect.rs:
