/root/repo/target/debug/deps/model_properties-e5d42f6ebdf828f3.d: crates/core/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-e5d42f6ebdf828f3: crates/core/tests/model_properties.rs

crates/core/tests/model_properties.rs:
