/root/repo/target/debug/deps/variants_and_targets-fe1f32a54aa32e5e.d: tests/variants_and_targets.rs

/root/repo/target/debug/deps/variants_and_targets-fe1f32a54aa32e5e: tests/variants_and_targets.rs

tests/variants_and_targets.rs:
