/root/repo/target/debug/deps/forms_and_codegen-702db2d9b328f167.d: tests/forms_and_codegen.rs Cargo.toml

/root/repo/target/debug/deps/libforms_and_codegen-702db2d9b328f167.rmeta: tests/forms_and_codegen.rs Cargo.toml

tests/forms_and_codegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
