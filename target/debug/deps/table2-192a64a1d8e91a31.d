/root/repo/target/debug/deps/table2-192a64a1d8e91a31.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-192a64a1d8e91a31: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
