/root/repo/target/debug/deps/tytra_sim-194d9679f31349f2.d: crates/sim/src/lib.rs crates/sim/src/cycle.rs crates/sim/src/exec.rs crates/sim/src/host.rs crates/sim/src/memory.rs crates/sim/src/netlist.rs crates/sim/src/power.rs crates/sim/src/rng.rs crates/sim/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_sim-194d9679f31349f2.rmeta: crates/sim/src/lib.rs crates/sim/src/cycle.rs crates/sim/src/exec.rs crates/sim/src/host.rs crates/sim/src/memory.rs crates/sim/src/netlist.rs crates/sim/src/power.rs crates/sim/src/rng.rs crates/sim/src/synth.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cycle.rs:
crates/sim/src/exec.rs:
crates/sim/src/host.rs:
crates/sim/src/memory.rs:
crates/sim/src/netlist.rs:
crates/sim/src/power.rs:
crates/sim/src/rng.rs:
crates/sim/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
