/root/repo/target/debug/deps/fig18-831d236e1786e969.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-831d236e1786e969: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
