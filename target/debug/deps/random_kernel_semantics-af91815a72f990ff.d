/root/repo/target/debug/deps/random_kernel_semantics-af91815a72f990ff.d: tests/random_kernel_semantics.rs Cargo.toml

/root/repo/target/debug/deps/librandom_kernel_semantics-af91815a72f990ff.rmeta: tests/random_kernel_semantics.rs Cargo.toml

tests/random_kernel_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
