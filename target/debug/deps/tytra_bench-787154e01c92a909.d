/root/repo/target/debug/deps/tytra_bench-787154e01c92a909.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/emit.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig15.rs crates/bench/src/fig17.rs crates/bench/src/fig18.rs crates/bench/src/speedup.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/tytra_bench-787154e01c92a909: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/emit.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig15.rs crates/bench/src/fig17.rs crates/bench/src/fig18.rs crates/bench/src/speedup.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/emit.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig15.rs:
crates/bench/src/fig17.rs:
crates/bench/src/fig18.rs:
crates/bench/src/speedup.rs:
crates/bench/src/table2.rs:
