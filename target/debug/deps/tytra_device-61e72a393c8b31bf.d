/root/repo/target/debug/deps/tytra_device-61e72a393c8b31bf.d: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

/root/repo/target/debug/deps/tytra_device-61e72a393c8b31bf: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

crates/device/src/lib.rs:
crates/device/src/bandwidth.rs:
crates/device/src/calibration.rs:
crates/device/src/interp.rs:
crates/device/src/library.rs:
crates/device/src/power.rs:
crates/device/src/resources.rs:
crates/device/src/target.rs:
