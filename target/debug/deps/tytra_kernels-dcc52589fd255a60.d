/root/repo/target/debug/deps/tytra_kernels-dcc52589fd255a60.d: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

/root/repo/target/debug/deps/libtytra_kernels-dcc52589fd255a60.rlib: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

/root/repo/target/debug/deps/libtytra_kernels-dcc52589fd255a60.rmeta: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

crates/kernels/src/lib.rs:
crates/kernels/src/common.rs:
crates/kernels/src/hotspot.rs:
crates/kernels/src/lavamd.rs:
crates/kernels/src/sor.rs:
crates/kernels/src/triad.rs:
