/root/repo/target/debug/deps/speedup-398ce87cd8ad1086.d: crates/bench/src/bin/speedup.rs

/root/repo/target/debug/deps/speedup-398ce87cd8ad1086: crates/bench/src/bin/speedup.rs

crates/bench/src/bin/speedup.rs:
