/root/repo/target/debug/deps/cexpr_fuzz-1b51940cc8d80643.d: crates/transform/tests/cexpr_fuzz.rs

/root/repo/target/debug/deps/cexpr_fuzz-1b51940cc8d80643: crates/transform/tests/cexpr_fuzz.rs

crates/transform/tests/cexpr_fuzz.rs:
