/root/repo/target/debug/deps/coarse_pipeline-97c9f017223bf12d.d: tests/coarse_pipeline.rs

/root/repo/target/debug/deps/coarse_pipeline-97c9f017223bf12d: tests/coarse_pipeline.rs

tests/coarse_pipeline.rs:
