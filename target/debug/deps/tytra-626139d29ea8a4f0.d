/root/repo/target/debug/deps/tytra-626139d29ea8a4f0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtytra-626139d29ea8a4f0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
