/root/repo/target/debug/deps/tytra_hls_baseline-2f04a4300223d701.d: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_hls_baseline-2f04a4300223d701.rmeta: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs Cargo.toml

crates/hls-baseline/src/lib.rs:
crates/hls-baseline/src/case_study.rs:
crates/hls-baseline/src/cpu.rs:
crates/hls-baseline/src/maxj.rs:
crates/hls-baseline/src/slow_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
