/root/repo/target/debug/deps/tytra_bench-1f4c3c232f734331.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/emit.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig15.rs crates/bench/src/fig17.rs crates/bench/src/fig18.rs crates/bench/src/speedup.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libtytra_bench-1f4c3c232f734331.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/emit.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig15.rs crates/bench/src/fig17.rs crates/bench/src/fig18.rs crates/bench/src/speedup.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libtytra_bench-1f4c3c232f734331.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/emit.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig15.rs crates/bench/src/fig17.rs crates/bench/src/fig18.rs crates/bench/src/speedup.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/emit.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig15.rs:
crates/bench/src/fig17.rs:
crates/bench/src/fig18.rs:
crates/bench/src/speedup.rs:
crates/bench/src/table2.rs:
