/root/repo/target/debug/deps/tytra_codegen-d6dcea3d03075d1d.d: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

/root/repo/target/debug/deps/libtytra_codegen-d6dcea3d03075d1d.rlib: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

/root/repo/target/debug/deps/libtytra_codegen-d6dcea3d03075d1d.rmeta: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

crates/codegen/src/lib.rs:
crates/codegen/src/check.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/wrapper.rs:
