/root/repo/target/debug/deps/tybec-c1c76375dfa996a0.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tybec-c1c76375dfa996a0: crates/cli/src/main.rs

crates/cli/src/main.rs:
