/root/repo/target/debug/deps/rand-6be7224635d7d75f.d: crates/compat-rand/src/lib.rs

/root/repo/target/debug/deps/librand-6be7224635d7d75f.rlib: crates/compat-rand/src/lib.rs

/root/repo/target/debug/deps/librand-6be7224635d7d75f.rmeta: crates/compat-rand/src/lib.rs

crates/compat-rand/src/lib.rs:
