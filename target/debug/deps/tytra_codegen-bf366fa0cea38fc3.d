/root/repo/target/debug/deps/tytra_codegen-bf366fa0cea38fc3.d: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_codegen-bf366fa0cea38fc3.rmeta: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/check.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/wrapper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
