/root/repo/target/debug/deps/tytra_kernels-5034ce8f8060b28e.d: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_kernels-5034ce8f8060b28e.rmeta: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/common.rs:
crates/kernels/src/hotspot.rs:
crates/kernels/src/lavamd.rs:
crates/kernels/src/sor.rs:
crates/kernels/src/triad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
