/root/repo/target/debug/deps/rand-d2a2677af13e9189.d: crates/compat-rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-d2a2677af13e9189.rmeta: crates/compat-rand/src/lib.rs Cargo.toml

crates/compat-rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
