/root/repo/target/debug/deps/crossbeam-c503c4ac88e4d438.d: crates/compat-crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-c503c4ac88e4d438.rmeta: crates/compat-crossbeam/src/lib.rs Cargo.toml

crates/compat-crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
