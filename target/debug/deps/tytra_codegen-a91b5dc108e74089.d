/root/repo/target/debug/deps/tytra_codegen-a91b5dc108e74089.d: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

/root/repo/target/debug/deps/tytra_codegen-a91b5dc108e74089: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

crates/codegen/src/lib.rs:
crates/codegen/src/check.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/wrapper.rs:
