/root/repo/target/debug/deps/all-d9ca6593a7e2bdde.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-d9ca6593a7e2bdde: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
