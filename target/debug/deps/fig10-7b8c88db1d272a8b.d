/root/repo/target/debug/deps/fig10-7b8c88db1d272a8b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-7b8c88db1d272a8b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
