/root/repo/target/debug/deps/tytra_cost-b818563783995ba4.d: crates/core/src/lib.rs crates/core/src/bandwidth.rs crates/core/src/bottleneck.rs crates/core/src/estimate.rs crates/core/src/frequency.rs crates/core/src/options.rs crates/core/src/params.rs crates/core/src/reconfig.rs crates/core/src/report.rs crates/core/src/resource.rs crates/core/src/schedule.rs crates/core/src/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_cost-b818563783995ba4.rmeta: crates/core/src/lib.rs crates/core/src/bandwidth.rs crates/core/src/bottleneck.rs crates/core/src/estimate.rs crates/core/src/frequency.rs crates/core/src/options.rs crates/core/src/params.rs crates/core/src/reconfig.rs crates/core/src/report.rs crates/core/src/resource.rs crates/core/src/schedule.rs crates/core/src/throughput.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bandwidth.rs:
crates/core/src/bottleneck.rs:
crates/core/src/estimate.rs:
crates/core/src/frequency.rs:
crates/core/src/options.rs:
crates/core/src/params.rs:
crates/core/src/reconfig.rs:
crates/core/src/report.rs:
crates/core/src/resource.rs:
crates/core/src/schedule.rs:
crates/core/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
