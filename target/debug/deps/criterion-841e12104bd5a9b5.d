/root/repo/target/debug/deps/criterion-841e12104bd5a9b5.d: crates/compat-criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-841e12104bd5a9b5.rlib: crates/compat-criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-841e12104bd5a9b5.rmeta: crates/compat-criterion/src/lib.rs

crates/compat-criterion/src/lib.rs:
