/root/repo/target/debug/deps/parser_roundtrip-efc525f99dbafc97.d: tests/parser_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libparser_roundtrip-efc525f99dbafc97.rmeta: tests/parser_roundtrip.rs Cargo.toml

tests/parser_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
