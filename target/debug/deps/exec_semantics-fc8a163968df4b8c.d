/root/repo/target/debug/deps/exec_semantics-fc8a163968df4b8c.d: tests/exec_semantics.rs

/root/repo/target/debug/deps/exec_semantics-fc8a163968df4b8c: tests/exec_semantics.rs

tests/exec_semantics.rs:
