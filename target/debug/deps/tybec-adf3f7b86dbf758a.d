/root/repo/target/debug/deps/tybec-adf3f7b86dbf758a.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tybec-adf3f7b86dbf758a: crates/cli/src/main.rs

crates/cli/src/main.rs:
