/root/repo/target/debug/deps/parser_roundtrip-20bea398d0b168fa.d: tests/parser_roundtrip.rs

/root/repo/target/debug/deps/parser_roundtrip-20bea398d0b168fa: tests/parser_roundtrip.rs

tests/parser_roundtrip.rs:
