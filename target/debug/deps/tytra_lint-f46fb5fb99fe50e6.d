/root/repo/target/debug/deps/tytra_lint-f46fb5fb99fe50e6.d: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

/root/repo/target/debug/deps/tytra_lint-f46fb5fb99fe50e6: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

crates/lint/src/lib.rs:
crates/lint/src/json.rs:
crates/lint/src/passes.rs:
crates/lint/src/render.rs:
