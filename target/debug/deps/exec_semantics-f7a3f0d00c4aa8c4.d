/root/repo/target/debug/deps/exec_semantics-f7a3f0d00c4aa8c4.d: tests/exec_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libexec_semantics-f7a3f0d00c4aa8c4.rmeta: tests/exec_semantics.rs Cargo.toml

tests/exec_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
