/root/repo/target/debug/deps/ablation-679602e638856f9a.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-679602e638856f9a: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
