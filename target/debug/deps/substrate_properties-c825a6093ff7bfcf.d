/root/repo/target/debug/deps/substrate_properties-c825a6093ff7bfcf.d: crates/sim/tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-c825a6093ff7bfcf: crates/sim/tests/substrate_properties.rs

crates/sim/tests/substrate_properties.rs:
