/root/repo/target/debug/deps/tytra_kernels-752c3e370693f10f.d: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

/root/repo/target/debug/deps/tytra_kernels-752c3e370693f10f: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

crates/kernels/src/lib.rs:
crates/kernels/src/common.rs:
crates/kernels/src/hotspot.rs:
crates/kernels/src/lavamd.rs:
crates/kernels/src/sor.rs:
crates/kernels/src/triad.rs:
