/root/repo/target/debug/deps/parking_lot-0884da1b712c84dc.d: crates/compat-parking-lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0884da1b712c84dc.rlib: crates/compat-parking-lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0884da1b712c84dc.rmeta: crates/compat-parking-lot/src/lib.rs

crates/compat-parking-lot/src/lib.rs:
