/root/repo/target/debug/deps/fixtures-e856e316cbc276f6.d: crates/lint/tests/fixtures.rs

/root/repo/target/debug/deps/fixtures-e856e316cbc276f6: crates/lint/tests/fixtures.rs

crates/lint/tests/fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
