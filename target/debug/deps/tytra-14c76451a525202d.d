/root/repo/target/debug/deps/tytra-14c76451a525202d.d: src/lib.rs

/root/repo/target/debug/deps/tytra-14c76451a525202d: src/lib.rs

src/lib.rs:
