/root/repo/target/debug/deps/coarse_pipeline-8184d700a05d2dd7.d: tests/coarse_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcoarse_pipeline-8184d700a05d2dd7.rmeta: tests/coarse_pipeline.rs Cargo.toml

tests/coarse_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
