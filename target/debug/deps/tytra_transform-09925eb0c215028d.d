/root/repo/target/debug/deps/tytra_transform-09925eb0c215028d.d: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_transform-09925eb0c215028d.rmeta: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs Cargo.toml

crates/transform/src/lib.rs:
crates/transform/src/cexpr.rs:
crates/transform/src/expr.rs:
crates/transform/src/lower.rs:
crates/transform/src/proofs.rs:
crates/transform/src/typetrans.rs:
crates/transform/src/vect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
