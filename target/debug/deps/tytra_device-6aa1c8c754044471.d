/root/repo/target/debug/deps/tytra_device-6aa1c8c754044471.d: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_device-6aa1c8c754044471.rmeta: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs Cargo.toml

crates/device/src/lib.rs:
crates/device/src/bandwidth.rs:
crates/device/src/calibration.rs:
crates/device/src/interp.rs:
crates/device/src/library.rs:
crates/device/src/power.rs:
crates/device/src/resources.rs:
crates/device/src/target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
