/root/repo/target/debug/deps/random_kernel_semantics-4ef102e71928189a.d: tests/random_kernel_semantics.rs

/root/repo/target/debug/deps/random_kernel_semantics-4ef102e71928189a: tests/random_kernel_semantics.rs

tests/random_kernel_semantics.rs:
