/root/repo/target/debug/deps/parking_lot-4984182fb769202d.d: crates/compat-parking-lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-4984182fb769202d.rmeta: crates/compat-parking-lot/src/lib.rs Cargo.toml

crates/compat-parking-lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
