/root/repo/target/debug/deps/comb_blocks-9af07c281ad3f52b.d: tests/comb_blocks.rs Cargo.toml

/root/repo/target/debug/deps/libcomb_blocks-9af07c281ad3f52b.rmeta: tests/comb_blocks.rs Cargo.toml

tests/comb_blocks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
