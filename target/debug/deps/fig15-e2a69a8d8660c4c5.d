/root/repo/target/debug/deps/fig15-e2a69a8d8660c4c5.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-e2a69a8d8660c4c5: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
