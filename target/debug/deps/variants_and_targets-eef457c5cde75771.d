/root/repo/target/debug/deps/variants_and_targets-eef457c5cde75771.d: tests/variants_and_targets.rs Cargo.toml

/root/repo/target/debug/deps/libvariants_and_targets-eef457c5cde75771.rmeta: tests/variants_and_targets.rs Cargo.toml

tests/variants_and_targets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
