/root/repo/target/debug/deps/tytra_transform-5d2f49671db2b242.d: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

/root/repo/target/debug/deps/tytra_transform-5d2f49671db2b242: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

crates/transform/src/lib.rs:
crates/transform/src/cexpr.rs:
crates/transform/src/expr.rs:
crates/transform/src/lower.rs:
crates/transform/src/proofs.rs:
crates/transform/src/typetrans.rs:
crates/transform/src/vect.rs:
