/root/repo/target/debug/deps/dse_pipeline-f3d79feb6769273f.d: tests/dse_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libdse_pipeline-f3d79feb6769273f.rmeta: tests/dse_pipeline.rs Cargo.toml

tests/dse_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
