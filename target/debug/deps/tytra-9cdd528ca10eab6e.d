/root/repo/target/debug/deps/tytra-9cdd528ca10eab6e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtytra-9cdd528ca10eab6e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
