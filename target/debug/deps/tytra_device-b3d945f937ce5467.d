/root/repo/target/debug/deps/tytra_device-b3d945f937ce5467.d: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

/root/repo/target/debug/deps/libtytra_device-b3d945f937ce5467.rlib: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

/root/repo/target/debug/deps/libtytra_device-b3d945f937ce5467.rmeta: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

crates/device/src/lib.rs:
crates/device/src/bandwidth.rs:
crates/device/src/calibration.rs:
crates/device/src/interp.rs:
crates/device/src/library.rs:
crates/device/src/power.rs:
crates/device/src/resources.rs:
crates/device/src/target.rs:
