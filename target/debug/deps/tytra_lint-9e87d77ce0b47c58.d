/root/repo/target/debug/deps/tytra_lint-9e87d77ce0b47c58.d: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

/root/repo/target/debug/deps/libtytra_lint-9e87d77ce0b47c58.rlib: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

/root/repo/target/debug/deps/libtytra_lint-9e87d77ce0b47c58.rmeta: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

crates/lint/src/lib.rs:
crates/lint/src/json.rs:
crates/lint/src/passes.rs:
crates/lint/src/render.rs:
