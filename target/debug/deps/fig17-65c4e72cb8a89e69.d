/root/repo/target/debug/deps/fig17-65c4e72cb8a89e69.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-65c4e72cb8a89e69: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
