/root/repo/target/debug/deps/end_to_end_sor-cac2a285cd041caf.d: tests/end_to_end_sor.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_sor-cac2a285cd041caf.rmeta: tests/end_to_end_sor.rs Cargo.toml

tests/end_to_end_sor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
