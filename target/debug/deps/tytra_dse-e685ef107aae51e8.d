/root/repo/target/debug/deps/tytra_dse-e685ef107aae51e8.d: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_dse-e685ef107aae51e8.rmeta: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs Cargo.toml

crates/dse/src/lib.rs:
crates/dse/src/explore.rs:
crates/dse/src/report.rs:
crates/dse/src/roofline.rs:
crates/dse/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
