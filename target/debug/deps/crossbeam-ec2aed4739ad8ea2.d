/root/repo/target/debug/deps/crossbeam-ec2aed4739ad8ea2.d: crates/compat-crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-ec2aed4739ad8ea2: crates/compat-crossbeam/src/lib.rs

crates/compat-crossbeam/src/lib.rs:
