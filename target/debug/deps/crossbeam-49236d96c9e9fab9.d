/root/repo/target/debug/deps/crossbeam-49236d96c9e9fab9.d: crates/compat-crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-49236d96c9e9fab9.rlib: crates/compat-crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-49236d96c9e9fab9.rmeta: crates/compat-crossbeam/src/lib.rs

crates/compat-crossbeam/src/lib.rs:
