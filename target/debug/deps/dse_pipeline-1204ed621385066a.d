/root/repo/target/debug/deps/dse_pipeline-1204ed621385066a.d: tests/dse_pipeline.rs

/root/repo/target/debug/deps/dse_pipeline-1204ed621385066a: tests/dse_pipeline.rs

tests/dse_pipeline.rs:
