/root/repo/target/debug/deps/tybec-baff52c133dd6e02.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tybec-baff52c133dd6e02: crates/cli/src/main.rs

crates/cli/src/main.rs:
