/root/repo/target/debug/deps/fig09-a58eb6d827f77359.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-a58eb6d827f77359: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
