/root/repo/target/debug/deps/tytra_ir-1dc81186e6529430.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/config_tree.rs crates/ir/src/dfg.rs crates/ir/src/diag.rs crates/ir/src/error.rs crates/ir/src/function.rs crates/ir/src/instr.rs crates/ir/src/module.rs crates/ir/src/parser/mod.rs crates/ir/src/parser/lexer.rs crates/ir/src/printer.rs crates/ir/src/stream.rs crates/ir/src/types.rs crates/ir/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libtytra_ir-1dc81186e6529430.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/config_tree.rs crates/ir/src/dfg.rs crates/ir/src/diag.rs crates/ir/src/error.rs crates/ir/src/function.rs crates/ir/src/instr.rs crates/ir/src/module.rs crates/ir/src/parser/mod.rs crates/ir/src/parser/lexer.rs crates/ir/src/printer.rs crates/ir/src/stream.rs crates/ir/src/types.rs crates/ir/src/validate.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/config_tree.rs:
crates/ir/src/dfg.rs:
crates/ir/src/diag.rs:
crates/ir/src/error.rs:
crates/ir/src/function.rs:
crates/ir/src/instr.rs:
crates/ir/src/module.rs:
crates/ir/src/parser/mod.rs:
crates/ir/src/parser/lexer.rs:
crates/ir/src/printer.rs:
crates/ir/src/stream.rs:
crates/ir/src/types.rs:
crates/ir/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
