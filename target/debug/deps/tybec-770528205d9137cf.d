/root/repo/target/debug/deps/tybec-770528205d9137cf.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tybec-770528205d9137cf: crates/cli/src/main.rs

crates/cli/src/main.rs:
