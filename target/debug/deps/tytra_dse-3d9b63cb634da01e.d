/root/repo/target/debug/deps/tytra_dse-3d9b63cb634da01e.d: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

/root/repo/target/debug/deps/libtytra_dse-3d9b63cb634da01e.rlib: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

/root/repo/target/debug/deps/libtytra_dse-3d9b63cb634da01e.rmeta: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

crates/dse/src/lib.rs:
crates/dse/src/explore.rs:
crates/dse/src/report.rs:
crates/dse/src/roofline.rs:
crates/dse/src/tuning.rs:
