/root/repo/target/debug/deps/forms_and_codegen-6b73bffe94d20f5c.d: tests/forms_and_codegen.rs

/root/repo/target/debug/deps/forms_and_codegen-6b73bffe94d20f5c: tests/forms_and_codegen.rs

tests/forms_and_codegen.rs:
