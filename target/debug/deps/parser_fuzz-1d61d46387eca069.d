/root/repo/target/debug/deps/parser_fuzz-1d61d46387eca069.d: crates/ir/tests/parser_fuzz.rs

/root/repo/target/debug/deps/parser_fuzz-1d61d46387eca069: crates/ir/tests/parser_fuzz.rs

crates/ir/tests/parser_fuzz.rs:
