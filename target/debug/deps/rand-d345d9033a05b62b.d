/root/repo/target/debug/deps/rand-d345d9033a05b62b.d: crates/compat-rand/src/lib.rs

/root/repo/target/debug/deps/rand-d345d9033a05b62b: crates/compat-rand/src/lib.rs

crates/compat-rand/src/lib.rs:
