/root/repo/target/debug/deps/cli-9a41616eaf648d97.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-9a41616eaf648d97: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_tybec=/root/repo/target/debug/tybec
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
