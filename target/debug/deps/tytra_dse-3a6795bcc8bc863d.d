/root/repo/target/debug/deps/tytra_dse-3a6795bcc8bc863d.d: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

/root/repo/target/debug/deps/tytra_dse-3a6795bcc8bc863d: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

crates/dse/src/lib.rs:
crates/dse/src/explore.rs:
crates/dse/src/report.rs:
crates/dse/src/roofline.rs:
crates/dse/src/tuning.rs:
