/root/repo/target/debug/deps/parking_lot-e0c10a68a8a74464.d: crates/compat-parking-lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-e0c10a68a8a74464: crates/compat-parking-lot/src/lib.rs

crates/compat-parking-lot/src/lib.rs:
