/root/repo/target/debug/deps/tytra_hls_baseline-638152d1327e6263.d: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

/root/repo/target/debug/deps/libtytra_hls_baseline-638152d1327e6263.rlib: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

/root/repo/target/debug/deps/libtytra_hls_baseline-638152d1327e6263.rmeta: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

crates/hls-baseline/src/lib.rs:
crates/hls-baseline/src/case_study.rs:
crates/hls-baseline/src/cpu.rs:
crates/hls-baseline/src/maxj.rs:
crates/hls-baseline/src/slow_estimator.rs:
