/root/repo/target/debug/deps/tytra_ir-3a8c4b1e54631e90.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/config_tree.rs crates/ir/src/dfg.rs crates/ir/src/diag.rs crates/ir/src/error.rs crates/ir/src/function.rs crates/ir/src/instr.rs crates/ir/src/module.rs crates/ir/src/parser/mod.rs crates/ir/src/parser/lexer.rs crates/ir/src/printer.rs crates/ir/src/stream.rs crates/ir/src/types.rs crates/ir/src/validate.rs

/root/repo/target/debug/deps/tytra_ir-3a8c4b1e54631e90: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/config_tree.rs crates/ir/src/dfg.rs crates/ir/src/diag.rs crates/ir/src/error.rs crates/ir/src/function.rs crates/ir/src/instr.rs crates/ir/src/module.rs crates/ir/src/parser/mod.rs crates/ir/src/parser/lexer.rs crates/ir/src/printer.rs crates/ir/src/stream.rs crates/ir/src/types.rs crates/ir/src/validate.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/config_tree.rs:
crates/ir/src/dfg.rs:
crates/ir/src/diag.rs:
crates/ir/src/error.rs:
crates/ir/src/function.rs:
crates/ir/src/instr.rs:
crates/ir/src/module.rs:
crates/ir/src/parser/mod.rs:
crates/ir/src/parser/lexer.rs:
crates/ir/src/printer.rs:
crates/ir/src/stream.rs:
crates/ir/src/types.rs:
crates/ir/src/validate.rs:
