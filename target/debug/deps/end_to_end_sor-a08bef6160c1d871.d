/root/repo/target/debug/deps/end_to_end_sor-a08bef6160c1d871.d: tests/end_to_end_sor.rs

/root/repo/target/debug/deps/end_to_end_sor-a08bef6160c1d871: tests/end_to_end_sor.rs

tests/end_to_end_sor.rs:
