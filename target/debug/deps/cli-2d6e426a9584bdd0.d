/root/repo/target/debug/deps/cli-2d6e426a9584bdd0.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-2d6e426a9584bdd0: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_tybec=/root/repo/target/debug/tybec
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
