/root/repo/target/debug/examples/hotspot_costing-47b7886fd23549bb.d: examples/hotspot_costing.rs

/root/repo/target/debug/examples/hotspot_costing-47b7886fd23549bb: examples/hotspot_costing.rs

examples/hotspot_costing.rs:
