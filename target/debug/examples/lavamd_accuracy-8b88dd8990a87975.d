/root/repo/target/debug/examples/lavamd_accuracy-8b88dd8990a87975.d: examples/lavamd_accuracy.rs

/root/repo/target/debug/examples/lavamd_accuracy-8b88dd8990a87975: examples/lavamd_accuracy.rs

examples/lavamd_accuracy.rs:
