/root/repo/target/debug/examples/sor_design_space-19e145d617380ed7.d: examples/sor_design_space.rs

/root/repo/target/debug/examples/sor_design_space-19e145d617380ed7: examples/sor_design_space.rs

examples/sor_design_space.rs:
