/root/repo/target/debug/examples/maxj_vs_tytra-145e21ce74d12d3f.d: examples/maxj_vs_tytra.rs Cargo.toml

/root/repo/target/debug/examples/libmaxj_vs_tytra-145e21ce74d12d3f.rmeta: examples/maxj_vs_tytra.rs Cargo.toml

examples/maxj_vs_tytra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
