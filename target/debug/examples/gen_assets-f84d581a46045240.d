/root/repo/target/debug/examples/gen_assets-f84d581a46045240.d: crates/cli/examples/gen_assets.rs

/root/repo/target/debug/examples/gen_assets-f84d581a46045240: crates/cli/examples/gen_assets.rs

crates/cli/examples/gen_assets.rs:
