/root/repo/target/debug/examples/hotspot_costing-4158cfbfcc8eb704.d: examples/hotspot_costing.rs Cargo.toml

/root/repo/target/debug/examples/libhotspot_costing-4158cfbfcc8eb704.rmeta: examples/hotspot_costing.rs Cargo.toml

examples/hotspot_costing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
