/root/repo/target/debug/examples/gen_assets-157a27245bf063c9.d: crates/cli/examples/gen_assets.rs

/root/repo/target/debug/examples/gen_assets-157a27245bf063c9: crates/cli/examples/gen_assets.rs

crates/cli/examples/gen_assets.rs:
