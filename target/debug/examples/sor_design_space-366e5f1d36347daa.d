/root/repo/target/debug/examples/sor_design_space-366e5f1d36347daa.d: examples/sor_design_space.rs Cargo.toml

/root/repo/target/debug/examples/libsor_design_space-366e5f1d36347daa.rmeta: examples/sor_design_space.rs Cargo.toml

examples/sor_design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
