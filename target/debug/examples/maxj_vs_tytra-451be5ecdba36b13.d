/root/repo/target/debug/examples/maxj_vs_tytra-451be5ecdba36b13.d: examples/maxj_vs_tytra.rs

/root/repo/target/debug/examples/maxj_vs_tytra-451be5ecdba36b13: examples/maxj_vs_tytra.rs

examples/maxj_vs_tytra.rs:
