/root/repo/target/debug/examples/custom_kernel_tirl-b74697ccbb40990f.d: examples/custom_kernel_tirl.rs

/root/repo/target/debug/examples/custom_kernel_tirl-b74697ccbb40990f: examples/custom_kernel_tirl.rs

examples/custom_kernel_tirl.rs:
