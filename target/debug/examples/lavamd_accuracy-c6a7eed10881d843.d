/root/repo/target/debug/examples/lavamd_accuracy-c6a7eed10881d843.d: examples/lavamd_accuracy.rs Cargo.toml

/root/repo/target/debug/examples/liblavamd_accuracy-c6a7eed10881d843.rmeta: examples/lavamd_accuracy.rs Cargo.toml

examples/lavamd_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
