/root/repo/target/debug/examples/quickstart-865fd846a395e98c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-865fd846a395e98c: examples/quickstart.rs

examples/quickstart.rs:
