/root/repo/target/debug/examples/custom_kernel_tirl-68d4929872bac9f4.d: examples/custom_kernel_tirl.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_kernel_tirl-68d4929872bac9f4.rmeta: examples/custom_kernel_tirl.rs Cargo.toml

examples/custom_kernel_tirl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
