/root/repo/target/release/deps/tytra_sim-0166e2c7fd7f6ac7.d: crates/sim/src/lib.rs crates/sim/src/cycle.rs crates/sim/src/exec.rs crates/sim/src/host.rs crates/sim/src/memory.rs crates/sim/src/netlist.rs crates/sim/src/power.rs crates/sim/src/rng.rs crates/sim/src/synth.rs

/root/repo/target/release/deps/libtytra_sim-0166e2c7fd7f6ac7.rlib: crates/sim/src/lib.rs crates/sim/src/cycle.rs crates/sim/src/exec.rs crates/sim/src/host.rs crates/sim/src/memory.rs crates/sim/src/netlist.rs crates/sim/src/power.rs crates/sim/src/rng.rs crates/sim/src/synth.rs

/root/repo/target/release/deps/libtytra_sim-0166e2c7fd7f6ac7.rmeta: crates/sim/src/lib.rs crates/sim/src/cycle.rs crates/sim/src/exec.rs crates/sim/src/host.rs crates/sim/src/memory.rs crates/sim/src/netlist.rs crates/sim/src/power.rs crates/sim/src/rng.rs crates/sim/src/synth.rs

crates/sim/src/lib.rs:
crates/sim/src/cycle.rs:
crates/sim/src/exec.rs:
crates/sim/src/host.rs:
crates/sim/src/memory.rs:
crates/sim/src/netlist.rs:
crates/sim/src/power.rs:
crates/sim/src/rng.rs:
crates/sim/src/synth.rs:
