/root/repo/target/release/deps/rand-29665b7374d8f981.d: crates/compat-rand/src/lib.rs

/root/repo/target/release/deps/librand-29665b7374d8f981.rlib: crates/compat-rand/src/lib.rs

/root/repo/target/release/deps/librand-29665b7374d8f981.rmeta: crates/compat-rand/src/lib.rs

crates/compat-rand/src/lib.rs:
