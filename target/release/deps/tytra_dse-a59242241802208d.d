/root/repo/target/release/deps/tytra_dse-a59242241802208d.d: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

/root/repo/target/release/deps/libtytra_dse-a59242241802208d.rlib: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

/root/repo/target/release/deps/libtytra_dse-a59242241802208d.rmeta: crates/dse/src/lib.rs crates/dse/src/explore.rs crates/dse/src/report.rs crates/dse/src/roofline.rs crates/dse/src/tuning.rs

crates/dse/src/lib.rs:
crates/dse/src/explore.rs:
crates/dse/src/report.rs:
crates/dse/src/roofline.rs:
crates/dse/src/tuning.rs:
