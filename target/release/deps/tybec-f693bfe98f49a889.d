/root/repo/target/release/deps/tybec-f693bfe98f49a889.d: crates/cli/src/main.rs

/root/repo/target/release/deps/tybec-f693bfe98f49a889: crates/cli/src/main.rs

crates/cli/src/main.rs:
