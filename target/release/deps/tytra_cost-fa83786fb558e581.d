/root/repo/target/release/deps/tytra_cost-fa83786fb558e581.d: crates/core/src/lib.rs crates/core/src/bandwidth.rs crates/core/src/bottleneck.rs crates/core/src/estimate.rs crates/core/src/frequency.rs crates/core/src/options.rs crates/core/src/params.rs crates/core/src/reconfig.rs crates/core/src/report.rs crates/core/src/resource.rs crates/core/src/schedule.rs crates/core/src/throughput.rs

/root/repo/target/release/deps/libtytra_cost-fa83786fb558e581.rlib: crates/core/src/lib.rs crates/core/src/bandwidth.rs crates/core/src/bottleneck.rs crates/core/src/estimate.rs crates/core/src/frequency.rs crates/core/src/options.rs crates/core/src/params.rs crates/core/src/reconfig.rs crates/core/src/report.rs crates/core/src/resource.rs crates/core/src/schedule.rs crates/core/src/throughput.rs

/root/repo/target/release/deps/libtytra_cost-fa83786fb558e581.rmeta: crates/core/src/lib.rs crates/core/src/bandwidth.rs crates/core/src/bottleneck.rs crates/core/src/estimate.rs crates/core/src/frequency.rs crates/core/src/options.rs crates/core/src/params.rs crates/core/src/reconfig.rs crates/core/src/report.rs crates/core/src/resource.rs crates/core/src/schedule.rs crates/core/src/throughput.rs

crates/core/src/lib.rs:
crates/core/src/bandwidth.rs:
crates/core/src/bottleneck.rs:
crates/core/src/estimate.rs:
crates/core/src/frequency.rs:
crates/core/src/options.rs:
crates/core/src/params.rs:
crates/core/src/reconfig.rs:
crates/core/src/report.rs:
crates/core/src/resource.rs:
crates/core/src/schedule.rs:
crates/core/src/throughput.rs:
