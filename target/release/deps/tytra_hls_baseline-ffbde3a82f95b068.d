/root/repo/target/release/deps/tytra_hls_baseline-ffbde3a82f95b068.d: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

/root/repo/target/release/deps/libtytra_hls_baseline-ffbde3a82f95b068.rlib: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

/root/repo/target/release/deps/libtytra_hls_baseline-ffbde3a82f95b068.rmeta: crates/hls-baseline/src/lib.rs crates/hls-baseline/src/case_study.rs crates/hls-baseline/src/cpu.rs crates/hls-baseline/src/maxj.rs crates/hls-baseline/src/slow_estimator.rs

crates/hls-baseline/src/lib.rs:
crates/hls-baseline/src/case_study.rs:
crates/hls-baseline/src/cpu.rs:
crates/hls-baseline/src/maxj.rs:
crates/hls-baseline/src/slow_estimator.rs:
