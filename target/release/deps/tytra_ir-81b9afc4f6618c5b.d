/root/repo/target/release/deps/tytra_ir-81b9afc4f6618c5b.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/config_tree.rs crates/ir/src/dfg.rs crates/ir/src/diag.rs crates/ir/src/error.rs crates/ir/src/function.rs crates/ir/src/instr.rs crates/ir/src/module.rs crates/ir/src/parser/mod.rs crates/ir/src/parser/lexer.rs crates/ir/src/printer.rs crates/ir/src/stream.rs crates/ir/src/types.rs crates/ir/src/validate.rs

/root/repo/target/release/deps/libtytra_ir-81b9afc4f6618c5b.rlib: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/config_tree.rs crates/ir/src/dfg.rs crates/ir/src/diag.rs crates/ir/src/error.rs crates/ir/src/function.rs crates/ir/src/instr.rs crates/ir/src/module.rs crates/ir/src/parser/mod.rs crates/ir/src/parser/lexer.rs crates/ir/src/printer.rs crates/ir/src/stream.rs crates/ir/src/types.rs crates/ir/src/validate.rs

/root/repo/target/release/deps/libtytra_ir-81b9afc4f6618c5b.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/config_tree.rs crates/ir/src/dfg.rs crates/ir/src/diag.rs crates/ir/src/error.rs crates/ir/src/function.rs crates/ir/src/instr.rs crates/ir/src/module.rs crates/ir/src/parser/mod.rs crates/ir/src/parser/lexer.rs crates/ir/src/printer.rs crates/ir/src/stream.rs crates/ir/src/types.rs crates/ir/src/validate.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/config_tree.rs:
crates/ir/src/dfg.rs:
crates/ir/src/diag.rs:
crates/ir/src/error.rs:
crates/ir/src/function.rs:
crates/ir/src/instr.rs:
crates/ir/src/module.rs:
crates/ir/src/parser/mod.rs:
crates/ir/src/parser/lexer.rs:
crates/ir/src/printer.rs:
crates/ir/src/stream.rs:
crates/ir/src/types.rs:
crates/ir/src/validate.rs:
