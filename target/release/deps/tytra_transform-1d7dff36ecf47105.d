/root/repo/target/release/deps/tytra_transform-1d7dff36ecf47105.d: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

/root/repo/target/release/deps/libtytra_transform-1d7dff36ecf47105.rlib: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

/root/repo/target/release/deps/libtytra_transform-1d7dff36ecf47105.rmeta: crates/transform/src/lib.rs crates/transform/src/cexpr.rs crates/transform/src/expr.rs crates/transform/src/lower.rs crates/transform/src/proofs.rs crates/transform/src/typetrans.rs crates/transform/src/vect.rs

crates/transform/src/lib.rs:
crates/transform/src/cexpr.rs:
crates/transform/src/expr.rs:
crates/transform/src/lower.rs:
crates/transform/src/proofs.rs:
crates/transform/src/typetrans.rs:
crates/transform/src/vect.rs:
