/root/repo/target/release/deps/tytra_codegen-b60a03af9e582a62.d: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

/root/repo/target/release/deps/libtytra_codegen-b60a03af9e582a62.rlib: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

/root/repo/target/release/deps/libtytra_codegen-b60a03af9e582a62.rmeta: crates/codegen/src/lib.rs crates/codegen/src/check.rs crates/codegen/src/verilog.rs crates/codegen/src/wrapper.rs

crates/codegen/src/lib.rs:
crates/codegen/src/check.rs:
crates/codegen/src/verilog.rs:
crates/codegen/src/wrapper.rs:
