/root/repo/target/release/deps/parking_lot-ef9471a33999b5d5.d: crates/compat-parking-lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-ef9471a33999b5d5.rlib: crates/compat-parking-lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-ef9471a33999b5d5.rmeta: crates/compat-parking-lot/src/lib.rs

crates/compat-parking-lot/src/lib.rs:
