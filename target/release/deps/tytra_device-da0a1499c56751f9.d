/root/repo/target/release/deps/tytra_device-da0a1499c56751f9.d: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

/root/repo/target/release/deps/libtytra_device-da0a1499c56751f9.rlib: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

/root/repo/target/release/deps/libtytra_device-da0a1499c56751f9.rmeta: crates/device/src/lib.rs crates/device/src/bandwidth.rs crates/device/src/calibration.rs crates/device/src/interp.rs crates/device/src/library.rs crates/device/src/power.rs crates/device/src/resources.rs crates/device/src/target.rs

crates/device/src/lib.rs:
crates/device/src/bandwidth.rs:
crates/device/src/calibration.rs:
crates/device/src/interp.rs:
crates/device/src/library.rs:
crates/device/src/power.rs:
crates/device/src/resources.rs:
crates/device/src/target.rs:
