/root/repo/target/release/deps/tytra-e76a1b13e1c16c8f.d: src/lib.rs

/root/repo/target/release/deps/libtytra-e76a1b13e1c16c8f.rlib: src/lib.rs

/root/repo/target/release/deps/libtytra-e76a1b13e1c16c8f.rmeta: src/lib.rs

src/lib.rs:
