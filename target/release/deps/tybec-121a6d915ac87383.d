/root/repo/target/release/deps/tybec-121a6d915ac87383.d: crates/cli/src/main.rs

/root/repo/target/release/deps/tybec-121a6d915ac87383: crates/cli/src/main.rs

crates/cli/src/main.rs:
