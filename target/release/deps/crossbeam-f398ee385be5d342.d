/root/repo/target/release/deps/crossbeam-f398ee385be5d342.d: crates/compat-crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f398ee385be5d342.rlib: crates/compat-crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f398ee385be5d342.rmeta: crates/compat-crossbeam/src/lib.rs

crates/compat-crossbeam/src/lib.rs:
