/root/repo/target/release/deps/tytra_lint-3428c93417c6632b.d: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

/root/repo/target/release/deps/libtytra_lint-3428c93417c6632b.rlib: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

/root/repo/target/release/deps/libtytra_lint-3428c93417c6632b.rmeta: crates/lint/src/lib.rs crates/lint/src/json.rs crates/lint/src/passes.rs crates/lint/src/render.rs

crates/lint/src/lib.rs:
crates/lint/src/json.rs:
crates/lint/src/passes.rs:
crates/lint/src/render.rs:
