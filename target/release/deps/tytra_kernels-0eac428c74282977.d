/root/repo/target/release/deps/tytra_kernels-0eac428c74282977.d: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

/root/repo/target/release/deps/libtytra_kernels-0eac428c74282977.rlib: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

/root/repo/target/release/deps/libtytra_kernels-0eac428c74282977.rmeta: crates/kernels/src/lib.rs crates/kernels/src/common.rs crates/kernels/src/hotspot.rs crates/kernels/src/lavamd.rs crates/kernels/src/sor.rs crates/kernels/src/triad.rs

crates/kernels/src/lib.rs:
crates/kernels/src/common.rs:
crates/kernels/src/hotspot.rs:
crates/kernels/src/lavamd.rs:
crates/kernels/src/sor.rs:
crates/kernels/src/triad.rs:
