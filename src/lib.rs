//! # TyTra — FPGA cost modelling and design-space exploration
//!
//! Facade crate re-exporting the whole TyTra workspace: the IR
//! ([`ir`]), device descriptions ([`device`]), the cost model ([`cost`]),
//! the virtual-FPGA substrate ([`sim`]), the functional front-end
//! ([`transform`]), the evaluation kernels ([`kernels`]), the
//! design-space-exploration engine ([`dse`]), the conventional-HLS
//! baseline ([`hls_baseline`]) and the Verilog emitter ([`codegen`]).
//!
//! This workspace is a from-scratch Rust reproduction of Nabi &
//! Vanderbauwhede, *"A Fast and Accurate Cost Model for FPGA Design Space
//! Exploration in HPC Applications"*, IPDPSW 2016. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use tytra_codegen as codegen;
pub use tytra_cost as cost;
pub use tytra_device as device;
pub use tytra_dse as dse;
pub use tytra_hls_baseline as hls_baseline;
pub use tytra_ir as ir;
pub use tytra_kernels as kernels;
pub use tytra_sim as sim;
pub use tytra_transform as transform;
